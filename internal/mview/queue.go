package mview

import (
	"fmt"
	"strings"
	"sync/atomic"

	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

// Maintenance modes. Eager folds DML deltas into sequence views inside the
// write itself; Deferred enqueues them per view and applies them on Drain
// (the engine drains before reads and on background ticks — read-repair);
// Off marks views stale on every base-table write, leaving REFRESH as the
// only repair. Deferred queues survive a crash without being persisted:
// deltas re-enqueue when WAL replay re-executes the DML past the last
// checkpoint, and checkpoints drain before snapshotting.
type Mode int

const (
	ModeEager Mode = iota
	ModeDeferred
	ModeOff
)

func (m Mode) String() string {
	switch m {
	case ModeDeferred:
		return "deferred"
	case ModeOff:
		return "off"
	default:
		return "eager"
	}
}

// ParseMode parses a maintenance-mode name. The empty string is the eager
// default, so an unset Options field or flag needs no special-casing.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "eager":
		return ModeEager, nil
	case "deferred":
		return ModeDeferred, nil
	case "off":
		return ModeOff, nil
	}
	return ModeEager, fmt.Errorf("mview: unknown maintenance mode %q (want eager, deferred, or off)", s)
}

// maxPendingDeltas caps one view's deferred queue. Overflow falls back to
// staleness — REFRESH recomputes from the base table, so dropping the queue
// loses no information, only incrementality.
const maxPendingDeltas = 4096

// Stats carries the maintenance counters, readable without the manager lock.
type Stats struct {
	// DeltaApplied counts DML deltas folded into a view incrementally
	// (eager applications and deferred drains alike).
	DeltaApplied atomic.Int64
	// FullRefreshes counts REFRESH MATERIALIZED VIEW recomputes of sequence
	// views — the §2.3 alternative the delta path avoids.
	FullRefreshes atomic.Int64
	// Pending is the number of queued deferred deltas across all views.
	Pending atomic.Int64
}

// Stats returns the manager's maintenance counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// PendingTotal returns the number of queued deferred deltas. It is
// lock-free: the engine checks it on every read statement.
func (m *Manager) PendingTotal() int64 { return m.stats.Pending.Load() }

// QueueDepths reports the deferred queue depth per sequence view, for the
// per-view gauge.
func (m *Manager) QueueDepths() map[string]float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]float64, len(m.seq))
	for _, sv := range m.seq {
		out[sv.mv.Name] = float64(len(sv.pending))
	}
	return out
}

// deltaKind discriminates pendingDelta payloads.
type deltaKind int

const (
	deltaInsert deltaKind = iota
	deltaUpdate
	deltaDelete
)

// pendingDelta is one DML event queued for deferred application. Row images
// are cloned at enqueue time: the queue outlives the statement that produced
// them, and later writes may mutate the heap rows the images alias.
type pendingDelta struct {
	kind          deltaKind
	rows          []sqltypes.Row // insert / delete images
	before, after []sqltypes.Row // update images
	cols          []string
}

func cloneRows(rows []sqltypes.Row) []sqltypes.Row {
	out := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// enqueue appends a delta to one view's deferred queue, cloning row images.
// Callers hold the manager lock. A full queue falls back to staleness.
func (m *Manager) enqueue(sv *seqView, d pendingDelta) {
	if len(sv.pending) >= maxPendingDeltas {
		m.clearPending(sv)
		m.markStale(sv, "deferred maintenance queue overflowed")
		return
	}
	d.rows = cloneRows(d.rows)
	d.before = cloneRows(d.before)
	d.after = cloneRows(d.after)
	sv.pending = append(sv.pending, d)
	m.stats.Pending.Add(1)
}

// clearPending drops a view's queue (refresh, overflow, drop). Callers hold
// the manager lock.
func (m *Manager) clearPending(sv *seqView) {
	if n := len(sv.pending); n > 0 {
		sv.pending = nil
		m.stats.Pending.Add(-int64(n))
	}
}

// Drain applies every queued deferred delta, in enqueue order per view, and
// returns how many were applied. A delta that cannot be folded marks its
// view stale and the rest of that view's queue is dropped (REFRESH
// supersedes it). The engine calls Drain under its exclusive lock — before
// read statements when deltas are pending, on background ticks, and before
// WAL checkpoints capture a snapshot.
func (m *Manager) Drain() int { return m.DrainTx(nil) }

// DrainTx is Drain inside a transaction: backing-table patches join tx's
// write-set instead of committing per operation, so readers see a queued
// delta's effects only once tx publishes.
func (m *Manager) DrainTx(tx *txn.Txn) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.curTx = tx
	defer func() { m.curTx = nil }()
	total := 0
	for _, sv := range m.seq {
		total += m.drainView(sv)
	}
	return total
}

func (m *Manager) drainView(sv *seqView) int {
	if len(sv.pending) == 0 {
		return 0
	}
	q := sv.pending
	sv.pending = nil
	m.stats.Pending.Add(-int64(len(q)))
	applied := 0
	for _, d := range q {
		if sv.stale {
			break // the remainder is moot; REFRESH rebuilds from the base
		}
		m.applyDelta(sv, d)
		applied++
	}
	return applied
}

// applyDelta folds one delta into a fresh view, updating the stats counters
// and the touched-rows observer. Callers hold the manager lock.
func (m *Manager) applyDelta(sv *seqView, d pendingDelta) {
	before := sv.touchedTotal()
	switch d.kind {
	case deltaInsert:
		m.applyInserts(sv, d.rows, d.cols)
	case deltaUpdate:
		m.applyUpdates(sv, d.before, d.after, d.cols)
	case deltaDelete:
		m.applyDeletes(sv, d.rows, d.cols)
	}
	if sv.stale {
		return
	}
	m.stats.DeltaApplied.Add(1)
	if m.observeTouched != nil {
		m.observeTouched(float64(sv.touchedTotal() - before))
	}
}
