package engine

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/rewrite"
	"rfview/internal/sqltypes"
)

// requireIdenticalRows asserts two result sets are exactly equal — same
// cardinality, same order, same datums (NULLs included). This is the
// vectorization contract: the typed fast path must be bit-identical to the
// boxed path, not merely numerically close.
func requireIdenticalRows(t *testing.T, off, on *Result, ctx string) {
	t.Helper()
	if len(off.Rows) != len(on.Rows) {
		t.Fatalf("%s: %d rows boxed vs %d vectorized", ctx, len(off.Rows), len(on.Rows))
	}
	for i := range off.Rows {
		if len(off.Rows[i]) != len(on.Rows[i]) {
			t.Fatalf("%s row %d: arity %d vs %d", ctx, i, len(off.Rows[i]), len(on.Rows[i]))
		}
		for j := range off.Rows[i] {
			a, b := off.Rows[i][j], on.Rows[i][j]
			if !sqltypes.Equal(a, b) && !(a.IsNull() && b.IsNull()) {
				t.Fatalf("%s row %d col %d: boxed %v vs vectorized %v", ctx, i, j, a, b)
			}
		}
	}
}

// TestDifferentialVectorizedOnOff forces the typed columnar fast path on and
// off for every evaluation strategy — native sequential, native parallel,
// the Fig. 2 self-join simulation, and the MaxOA / MinOA view derivations —
// and requires exactly identical rows from each pair of engines that differ
// only in DisableVectorized.
func TestDifferentialVectorizedOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	derivationsFired := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		groups := 1 + rng.Intn(4)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := rng.Intn(5), rng.Intn(5)
		if ly+hy == 0 {
			hy = 2
		}
		// AVG is absent: partitioned AVG views cannot be materialized (§2.1);
		// the boundary test below covers AVG through the native paths.
		agg := []string{"SUM", "SUM", "COUNT", "MIN", "MAX"}[rng.Intn(5)]
		if agg == "MIN" || agg == "MAX" {
			// MIN/MAX derivation needs a covering extension.
			dl, dh := rng.Intn(lx+hx+1), rng.Intn(lx+hx+1)
			if dl+dh > lx+hx+1 {
				dh = 0
			}
			ly, hy = lx+dl, hx+dh
			if ly+hy == 0 {
				hy = 1
			}
		}
		seed := rng.Int63()
		sizes := make([]int, groups)
		for g := range sizes {
			sizes[g] = 3 + rng.Intn(14)
		}
		q := fmt.Sprintf(`SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM pt`, agg, ly, hy)
		viewDDL := fmt.Sprintf(`CREATE MATERIALIZED VIEW pv AS
		  SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		    ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS val FROM pt`, agg, lx, hx)

		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			mustExec(t, e, `CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`)
			var b strings.Builder
			b.WriteString("INSERT INTO pt VALUES ")
			first := true
			for g, n := range sizes {
				for i := 1; i <= n; i++ {
					if !first {
						b.WriteString(", ")
					}
					first = false
					fmt.Fprintf(&b, "('g%d', %d, %d)", g, i, local.Intn(100)-50)
				}
			}
			mustExec(t, e, b.String())
		}

		type strategy struct {
			label string
			run   func(disableVec bool) *Result
		}
		strategies := []strategy{
			{"native/seq", func(dv bool) *Result {
				opts := DefaultOptions()
				opts.UseMatViews = false
				opts.WindowParallelism = 1
				opts.DisableVectorized = dv
				e := New(opts)
				load(e)
				return mustExec(t, e, q)
			}},
			{"native/parallel", func(dv bool) *Result {
				opts := DefaultOptions()
				opts.UseMatViews = false
				opts.WindowParallelism = 4
				opts.DisableVectorized = dv
				e := New(opts)
				load(e)
				return mustExec(t, e, q)
			}},
			{"selfjoin", func(dv bool) *Result {
				opts := DefaultOptions()
				opts.UseMatViews = false
				opts.NativeWindow = false
				opts.DisableVectorized = dv
				e := New(opts)
				load(e)
				res := mustExec(t, e, q)
				if res.Rewritten == "" {
					t.Fatalf("trial %d: self-join rewrite did not fire", trial)
				}
				return res
			}},
		}
		for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
			strat := strat
			strategies = append(strategies, strategy{"derive/" + strat.String(), func(dv bool) *Result {
				opts := DefaultOptions()
				opts.Strategy = strat
				opts.Form = []rewrite.Form{rewrite.FormDisjunctive, rewrite.FormUnion}[trial%2]
				opts.DisableVectorized = dv
				e := New(opts)
				load(e)
				mustExec(t, e, viewDDL)
				res := mustExec(t, e, q)
				if res.Derivation != nil {
					derivationsFired[strat.String()]++
				}
				return res
			}})
		}

		for _, s := range strategies {
			ctx := fmt.Sprintf("trial %d agg=%s ỹ=(%d,%d) %s", trial, agg, ly, hy, s.label)
			requireIdenticalRows(t, s.run(true), s.run(false), ctx)
		}
	}
	for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
		if derivationsFired[strat.String()] == 0 {
			t.Fatalf("%v never fired — on/off oracle is not exercising derivation", strat)
		}
	}
}

// TestDifferentialVectorizedBoundary drives the runtime fallback boundary
// through full engine queries: NULLs mid-column, FLOAT columns, Int/Float-
// mixed arguments via CASE (the DECIMAL stand-in), and DESC order keys. The
// vectorized and boxed engines must return exactly identical rows, for
// sequential and partition-parallel execution.
func TestDifferentialVectorizedBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := []string{
		`SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos) AS w,
		   MIN(fval) OVER (PARTITION BY grp ORDER BY pos) AS m FROM bt`,
		`SELECT grp, pos, AVG(fval) OVER (PARTITION BY grp ORDER BY pos DESC
		   ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM bt`,
		`SELECT grp, pos, SUM(CASE WHEN pos < 5 THEN val ELSE fval END)
		   OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 2 FOLLOWING) AS w FROM bt`,
		`SELECT grp, pos, MAX(val) OVER (PARTITION BY grp ORDER BY pos DESC) AS w,
		   COUNT(val) OVER (PARTITION BY grp ORDER BY pos DESC) AS c FROM bt`,
	}
	for trial := 0; trial < 8; trial++ {
		seed := rng.Int63()
		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			mustExec(t, e, `CREATE TABLE bt (grp VARCHAR(8), pos INTEGER, val INTEGER, fval FLOAT)`)
			var b strings.Builder
			b.WriteString("INSERT INTO bt VALUES ")
			first := true
			for g := 0; g < 3; g++ {
				n := 4 + local.Intn(12)
				for i := 1; i <= n; i++ {
					if !first {
						b.WriteString(", ")
					}
					first = false
					val := fmt.Sprintf("%d", local.Intn(100)-50)
					if local.Intn(4) == 0 {
						val = "NULL" // NULLs mid-column force the boxed kernel
					}
					fval := fmt.Sprintf("%g", float64(local.Intn(1000)-500)/8)
					if local.Intn(5) == 0 {
						fval = "NULL"
					}
					fmt.Fprintf(&b, "('g%d', %d, %s, %s)", g, i, val, fval)
				}
			}
			mustExec(t, e, b.String())
		}
		for qi, q := range queries {
			for _, par := range []int{1, 4} {
				results := make([]*Result, 2)
				for k, dv := range []bool{true, false} {
					opts := DefaultOptions()
					opts.WindowParallelism = par
					opts.DisableVectorized = dv
					e := New(opts)
					load(e)
					results[k] = mustExec(t, e, q)
				}
				ctx := fmt.Sprintf("trial %d query %d parallel=%d", trial, qi, par)
				requireIdenticalRows(t, results[0], results[1], ctx)
			}
		}
	}
}

// TestExplainAnalyzeVectorized: EXPLAIN ANALYZE advertises the fast path on
// eligible plans, and the engine knob strips it.
func TestExplainAnalyzeVectorized(t *testing.T) {
	q := `EXPLAIN ANALYZE SELECT pos, SUM(val) OVER (ORDER BY pos) AS w FROM seq ORDER BY pos DESC`

	e := New(DefaultOptions())
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	res, err := e.ExecContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(res.Plan, "vectorized=true") < 2 {
		t.Fatalf("EXPLAIN ANALYZE misses vectorized=true on Window and Sort:\n%s", res.Plan)
	}

	opts := DefaultOptions()
	opts.DisableVectorized = true
	e = New(opts)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	res, err = e.ExecContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "vectorized") {
		t.Fatalf("DisableVectorized plan must not advertise vectorization:\n%s", res.Plan)
	}

	// The stats behind the metrics gauges move when the fast path runs.
	e = New(DefaultOptions())
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `SELECT pos, SUM(val) OVER (ORDER BY pos) AS w FROM seq`)
	if e.winStats.TypedKernels.Load() == 0 || e.winStats.NormalizedSorts.Load() == 0 {
		t.Fatalf("fast-path stats did not move: typed=%d normalized=%d",
			e.winStats.TypedKernels.Load(), e.winStats.NormalizedSorts.Load())
	}
}
