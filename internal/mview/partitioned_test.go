package mview

import (
	"math"
	"strings"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// pfixture builds pseq(grp, pos, val) with per-partition dense positions and
// val = pos * factor(grp).
func pfixture(t *testing.T, sizes map[string]int) (*catalog.Catalog, *Manager) {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.CreateTable("pseq", []catalog.Column{
		{Name: "grp", Type: sqltypes.String},
		{Name: "pos", Type: sqltypes.Int},
		{Name: "val", Type: sqltypes.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	factor := int64(1)
	for g, n := range sizes {
		factor++
		for i := int64(1); i <= int64(n); i++ {
			tbl.Heap.Insert(sqltypes.Row{sqltypes.NewString(g), sqltypes.NewInt(i), sqltypes.NewInt(i * factor)})
		}
	}
	return cat, NewManager(cat, nil)
}

const pViewDDL = `CREATE MATERIALIZED VIEW pmv AS
  SELECT grp, pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos
    ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM pseq`

func createPView(t *testing.T, m *Manager) {
	t.Helper()
	stmt, err := sqlparser.Parse(pViewDDL)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Create(stmt.(*sqlparser.CreateMatView)); err != nil {
		t.Fatal(err)
	}
}

// basePartition reads one partition's raw values ordered by pos.
func basePartition(t *testing.T, cat *catalog.Catalog, grp string) []float64 {
	t.Helper()
	base, err := cat.Table("pseq")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[int64]float64{}
	base.Heap.Scan(func(_ storage.RowID, row sqltypes.Row) bool {
		if row[0].Str() == grp {
			vals[row[1].Int()] = row[2].Float()
		}
		return true
	})
	out := make([]float64, len(vals))
	for i := int64(1); i <= int64(len(vals)); i++ {
		out[i-1] = vals[i]
	}
	return out
}

// checkPartitionBacking compares one partition's backing rows against a
// fresh core computation, including body flags.
func checkPartitionBacking(t *testing.T, cat *catalog.Catalog, grp string, ctx string) {
	t.Helper()
	raw := basePartition(t, cat, grp)
	want, err := core.ComputePipelined(raw, core.Sliding(2, 1), core.Sum)
	if err != nil {
		t.Fatal(err)
	}
	mv, ok := cat.MatView("pmv")
	if !ok {
		t.Fatal("view missing")
	}
	got := map[int64][2]interface{}{}
	mv.Table.Heap.Scan(func(_ storage.RowID, row sqltypes.Row) bool {
		if row[0].Str() == grp {
			got[row[1].Int()] = [2]interface{}{row[2].Float(), row[3].Bool()}
		}
		return true
	})
	count := 0
	for k := want.Lo(); k <= want.Hi(); k++ {
		v, okv := want.AtOK(k)
		if !okv {
			continue
		}
		count++
		cell, present := got[int64(k)]
		if !present {
			t.Fatalf("%s: partition %q missing pos %d", ctx, grp, k)
		}
		if math.Abs(cell[0].(float64)-v) > 1e-9 {
			t.Fatalf("%s: partition %q pos %d = %v, want %v", ctx, grp, k, cell[0], v)
		}
		wantBody := k >= 1 && k <= want.N
		if cell[1].(bool) != wantBody {
			t.Fatalf("%s: partition %q pos %d body=%v, want %v", ctx, grp, k, cell[1], wantBody)
		}
	}
	if len(got) != count {
		t.Fatalf("%s: partition %q has %d rows, want %d", ctx, grp, len(got), count)
	}
}

func TestCreatePartitionedView(t *testing.T) {
	cat, m := pfixture(t, map[string]int{"a": 12, "b": 7})
	createPView(t, m)
	mv, ok := cat.MatView("pmv")
	if !ok || mv.PartColumn != "grp" {
		t.Fatalf("view metadata = %+v", mv)
	}
	checkPartitionBacking(t, cat, "a", "create")
	checkPartitionBacking(t, cat, "b", "create")
	if mv.Table.Heap.IndexOn([]int{0, 1}) == nil {
		t.Fatal("backing table must carry a (part, pos) index")
	}
}

func TestPartitionedUpdateIncremental(t *testing.T) {
	cat, m := pfixture(t, map[string]int{"a": 10, "b": 10})
	createPView(t, m)
	base, _ := cat.Table("pseq")
	cols := base.ColumnNames()
	var id storage.RowID
	var before sqltypes.Row
	base.Heap.Scan(func(i storage.RowID, row sqltypes.Row) bool {
		if row[0].Str() == "a" && row[1].Int() == 5 {
			id, before = i, row
			return false
		}
		return true
	})
	after := sqltypes.Row{sqltypes.NewString("a"), sqltypes.NewInt(5), sqltypes.NewInt(999)}
	if _, err := base.Heap.Update(id, after); err != nil {
		t.Fatal(err)
	}
	m.AfterUpdate(nil, "pseq", []sqltypes.Row{before}, []sqltypes.Row{after}, cols)
	if m.Stale("pmv") {
		t.Fatal("partitioned value update must stay incremental")
	}
	checkPartitionBacking(t, cat, "a", "after update")
	checkPartitionBacking(t, cat, "b", "after update (untouched partition)")
}

func TestPartitionedAppendAndNewPartition(t *testing.T) {
	cat, m := pfixture(t, map[string]int{"a": 6})
	createPView(t, m)
	base, _ := cat.Table("pseq")
	cols := base.ColumnNames()

	row := sqltypes.Row{sqltypes.NewString("a"), sqltypes.NewInt(7), sqltypes.NewInt(70)}
	base.Heap.Insert(row)
	m.AfterInsert(nil, "pseq", []sqltypes.Row{row}, cols)
	if m.Stale("pmv") {
		t.Fatal("append must stay incremental")
	}
	checkPartitionBacking(t, cat, "a", "after append")

	// A new partition opening at position 1 is also incremental.
	row2 := sqltypes.Row{sqltypes.NewString("z"), sqltypes.NewInt(1), sqltypes.NewInt(5)}
	base.Heap.Insert(row2)
	m.AfterInsert(nil, "pseq", []sqltypes.Row{row2}, cols)
	if m.Stale("pmv") {
		t.Fatal("new partition at pos 1 must stay incremental")
	}
	checkPartitionBacking(t, cat, "z", "new partition")

	// A new partition opening anywhere else goes stale.
	row3 := sqltypes.Row{sqltypes.NewString("q"), sqltypes.NewInt(3), sqltypes.NewInt(5)}
	base.Heap.Insert(row3)
	m.AfterInsert(nil, "pseq", []sqltypes.Row{row3}, cols)
	if !m.Stale("pmv") {
		t.Fatal("non-dense partition opening must go stale")
	}
}

func TestPartitionedSuffixDeleteAndVanish(t *testing.T) {
	cat, m := pfixture(t, map[string]int{"a": 3, "b": 5})
	createPView(t, m)
	base, _ := cat.Table("pseq")
	cols := base.ColumnNames()
	// Delete partition a entirely, suffix-first.
	for pos := int64(3); pos >= 1; pos-- {
		var id storage.RowID
		var row sqltypes.Row
		base.Heap.Scan(func(i storage.RowID, r sqltypes.Row) bool {
			if r[0].Str() == "a" && r[1].Int() == pos {
				id, row = i, r
				return false
			}
			return true
		})
		if err := base.Heap.Delete(id); err != nil {
			t.Fatal(err)
		}
		m.AfterDelete(nil, "pseq", []sqltypes.Row{row}, cols)
		if m.Stale("pmv") {
			t.Fatalf("suffix delete at pos %d must stay incremental", pos)
		}
	}
	// Partition a is gone from the backing table.
	mv, _ := cat.MatView("pmv")
	mv.Table.Heap.Scan(func(_ storage.RowID, row sqltypes.Row) bool {
		if row[0].Str() == "a" {
			t.Fatalf("vanished partition still has row %v", row)
		}
		return true
	})
	checkPartitionBacking(t, cat, "b", "after partition removal")
	// And re-opening it at pos 1 works.
	row := sqltypes.Row{sqltypes.NewString("a"), sqltypes.NewInt(1), sqltypes.NewInt(4)}
	base.Heap.Insert(row)
	m.AfterInsert(nil, "pseq", []sqltypes.Row{row}, cols)
	if m.Stale("pmv") {
		t.Fatal("re-opened partition must stay incremental")
	}
	checkPartitionBacking(t, cat, "a", "re-opened partition")
}

func TestPartitionedRefresh(t *testing.T) {
	cat, m := pfixture(t, map[string]int{"a": 5, "b": 4})
	createPView(t, m)
	base, _ := cat.Table("pseq")
	// Force staleness with a middle delete, then repair density and refresh.
	var id storage.RowID
	var row sqltypes.Row
	base.Heap.Scan(func(i storage.RowID, r sqltypes.Row) bool {
		if r[0].Str() == "a" && r[1].Int() == 2 {
			id, row = i, r
			return false
		}
		return true
	})
	base.Heap.Delete(id)
	m.AfterDelete(nil, "pseq", []sqltypes.Row{row}, base.ColumnNames())
	if !m.Stale("pmv") {
		t.Fatal("middle delete must go stale")
	}
	// Repair: move pos 5 into the hole.
	base.Heap.Scan(func(i storage.RowID, r sqltypes.Row) bool {
		if r[0].Str() == "a" && r[1].Int() == 5 {
			nr := r.Clone()
			nr[1] = sqltypes.NewInt(2)
			base.Heap.Update(i, nr)
			return false
		}
		return true
	})
	if err := m.Refresh("pmv"); err != nil {
		t.Fatal(err)
	}
	if m.Stale("pmv") {
		t.Fatal("refresh must clear staleness")
	}
	checkPartitionBacking(t, cat, "a", "after refresh")
	checkPartitionBacking(t, cat, "b", "after refresh")
}

func TestPartitionedCreateRejections(t *testing.T) {
	// NULL partition keys.
	cat := catalog.New()
	tbl, _ := cat.CreateTable("pseq", []catalog.Column{
		{Name: "grp", Type: sqltypes.String},
		{Name: "pos", Type: sqltypes.Int},
		{Name: "val", Type: sqltypes.Int},
	})
	tbl.Heap.Insert(sqltypes.Row{sqltypes.NullDatum, sqltypes.NewInt(1), sqltypes.NewInt(1)})
	m := NewManager(cat, nil)
	stmt, _ := sqlparser.Parse(pViewDDL)
	if err := m.Create(stmt.(*sqlparser.CreateMatView)); err == nil ||
		!strings.Contains(err.Error(), "non-NULL") {
		t.Fatalf("NULL partition key must be rejected: %v", err)
	}
	// AVG partitioned views are refused.
	cat2, m2 := pfixture(t, map[string]int{"a": 4})
	_ = cat2
	stmt2, _ := sqlparser.Parse(`CREATE MATERIALIZED VIEW bad AS
	  SELECT grp, pos, AVG(val) OVER (PARTITION BY grp ORDER BY pos
	    ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM pseq`)
	if err := m2.Create(stmt2.(*sqlparser.CreateMatView)); err == nil {
		t.Fatal("partitioned AVG view must be rejected")
	}
	// Positional shifts refuse partitioned views.
	cat3, m3 := pfixture(t, map[string]int{"a": 4})
	_ = cat3
	createPView(t, m3)
	if err := m3.ShiftInsert("pmv", 1, 1); err == nil {
		t.Fatal("shift insert on partitioned view must fail")
	}
	if err := m3.ShiftDelete("pmv", 1); err == nil {
		t.Fatal("shift delete on partitioned view must fail")
	}
}
