package mview

import (
	"context"
	"math"
	"strings"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// fixture builds a catalog with seq(pos,val) filled with val = pos*pos and a
// manager (without a plain-view executor).
func fixture(t *testing.T, n int) (*catalog.Catalog, *Manager) {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.CreateTable("seq", []catalog.Column{
		{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= int64(n); i++ {
		tbl.Heap.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * i)})
	}
	return cat, NewManager(cat, nil)
}

func createView(t *testing.T, m *Manager, ddl string) {
	t.Helper()
	stmt, err := sqlparser.Parse(ddl)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Create(stmt.(*sqlparser.CreateMatView)); err != nil {
		t.Fatal(err)
	}
}

const seqViewDDL = `CREATE MATERIALIZED VIEW mv AS
  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`

// viewValues reads the backing table into a pos→val map.
func viewValues(t *testing.T, cat *catalog.Catalog, name string) map[int64]float64 {
	t.Helper()
	mv, ok := cat.MatView(name)
	if !ok {
		t.Fatalf("view %q missing", name)
	}
	out := make(map[int64]float64)
	mv.Table.Heap.Scan(func(_ storage.RowID, row sqltypes.Row) bool {
		out[row[0].Int()] = row[1].Float()
		return true
	})
	return out
}

// checkViewMatchesCore verifies the backing table equals a fresh core
// computation over the base table's current contents.
func checkViewMatchesCore(t *testing.T, cat *catalog.Catalog, m *Manager, name string, win core.Window, agg core.Agg) {
	t.Helper()
	base, err := cat.Table("seq")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.readDenseSequence(base, "pos", "val")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ComputePipelined(raw, win, agg)
	if err != nil {
		t.Fatal(err)
	}
	got := viewValues(t, cat, name)
	count := 0
	for k := want.Lo(); k <= want.Hi(); k++ {
		v, ok := want.AtOK(k)
		if !ok {
			continue
		}
		count++
		gv, present := got[int64(k)]
		if !present || math.Abs(gv-v) > 1e-9 {
			t.Fatalf("view %q at pos %d: got (%v,%v), want %v", name, k, gv, present, v)
		}
	}
	if len(got) != count {
		t.Fatalf("view %q has %d rows, want %d", name, len(got), count)
	}
}

func TestCreateSequenceView(t *testing.T) {
	cat, m := fixture(t, 20)
	createView(t, m, seqViewDDL)
	mv, ok := cat.MatView("mv")
	if !ok || mv.Kind != catalog.SequenceView {
		t.Fatal("sequence view not registered")
	}
	if mv.BaseRows.Load() != 20 || mv.Window.Preceding != 2 || mv.Window.Following != 1 {
		t.Fatalf("view metadata = %+v", mv)
	}
	// Complete sequence: header position 0 and trailer rows 21, 22 present.
	vals := viewValues(t, cat, "mv")
	if _, ok := vals[0]; !ok {
		t.Error("header row missing")
	}
	if _, ok := vals[22]; !ok {
		t.Error("trailer row missing")
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
	// The backing table has a pk index for the derivation patterns.
	if mv.Table.Heap.IndexOn([]int{0}) == nil {
		t.Error("backing table must carry a position index")
	}
}

func TestCreateCumulativeAndMinMaxViews(t *testing.T) {
	cat, m := fixture(t, 15)
	createView(t, m, `CREATE MATERIALIZED VIEW cum AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`)
	checkViewMatchesCore(t, cat, m, "cum", core.Cumul(), core.Sum)
	createView(t, m, `CREATE MATERIALIZED VIEW mn AS
	  SELECT pos, MIN(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`)
	checkViewMatchesCore(t, cat, m, "mn", core.Sliding(2, 2), core.Min)
	createView(t, m, `CREATE MATERIALIZED VIEW av AS
	  SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	checkViewMatchesCore(t, cat, m, "av", core.Sliding(1, 1), core.Avg)
	createView(t, m, `CREATE MATERIALIZED VIEW ct AS
	  SELECT pos, COUNT(*) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	checkViewMatchesCore(t, cat, m, "ct", core.Sliding(1, 1), core.Count)
}

func TestCreateRejectsNonDense(t *testing.T) {
	cat, m := fixture(t, 5)
	base, _ := cat.Table("seq")
	// Punch a hole.
	var victim storage.RowID
	base.Heap.Scan(func(id storage.RowID, row sqltypes.Row) bool {
		if row[0].Int() == 3 {
			victim = id
			return false
		}
		return true
	})
	base.Heap.Delete(victim)
	stmt, _ := sqlparser.Parse(seqViewDDL)
	err := m.Create(stmt.(*sqlparser.CreateMatView))
	if err == nil || !strings.Contains(err.Error(), "dense") {
		t.Fatalf("gap must be rejected: %v", err)
	}
}

func TestIncrementalUpdate(t *testing.T) {
	cat, m := fixture(t, 25)
	createView(t, m, seqViewDDL)
	base, _ := cat.Table("seq")
	cols := base.ColumnNames()
	// Update pos 10: 100 → 7.
	var id storage.RowID
	var before sqltypes.Row
	base.Heap.Scan(func(i storage.RowID, row sqltypes.Row) bool {
		if row[0].Int() == 10 {
			id, before = i, row
			return false
		}
		return true
	})
	after := sqltypes.Row{sqltypes.NewInt(10), sqltypes.NewInt(7)}
	if _, err := base.Heap.Update(id, after); err != nil {
		t.Fatal(err)
	}
	m.AfterUpdate(nil, "seq", []sqltypes.Row{before}, []sqltypes.Row{after}, cols)
	if m.Stale("mv") {
		t.Fatal("value update must stay incremental")
	}
	if m.MaintenanceEvents != 1 {
		t.Fatalf("events = %d", m.MaintenanceEvents)
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
}

func TestIncrementalAppendAndSuffixDelete(t *testing.T) {
	cat, m := fixture(t, 10)
	createView(t, m, seqViewDDL)
	base, _ := cat.Table("seq")
	cols := base.ColumnNames()

	row := sqltypes.Row{sqltypes.NewInt(11), sqltypes.NewInt(1000)}
	base.Heap.Insert(row)
	m.AfterInsert(nil, "seq", []sqltypes.Row{row}, cols)
	if m.Stale("mv") {
		t.Fatal("append must stay incremental")
	}
	mv, _ := cat.MatView("mv")
	if mv.BaseRows.Load() != 11 {
		t.Fatalf("BaseRows = %d", mv.BaseRows.Load())
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)

	// Suffix delete.
	var id storage.RowID
	base.Heap.Scan(func(i storage.RowID, r sqltypes.Row) bool {
		if r[0].Int() == 11 {
			id = i
			return false
		}
		return true
	})
	base.Heap.Delete(id)
	m.AfterDelete(nil, "seq", []sqltypes.Row{row}, cols)
	if m.Stale("mv") {
		t.Fatal("suffix delete must stay incremental")
	}
	if mv.BaseRows.Load() != 10 {
		t.Fatalf("BaseRows = %d after delete", mv.BaseRows.Load())
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
}

func TestStalenessPaths(t *testing.T) {
	cases := []struct {
		name string
		muck func(m *Manager, base *catalog.Table)
	}{
		{"middle insert", func(m *Manager, base *catalog.Table) {
			row := sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewInt(1)}
			m.AfterInsert(nil, "seq", []sqltypes.Row{row}, base.ColumnNames())
		}},
		{"middle delete", func(m *Manager, base *catalog.Table) {
			row := sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewInt(9)}
			m.AfterDelete(nil, "seq", []sqltypes.Row{row}, base.ColumnNames())
		}},
		{"position update", func(m *Manager, base *catalog.Table) {
			before := sqltypes.Row{sqltypes.NewInt(3), sqltypes.NewInt(9)}
			after := sqltypes.Row{sqltypes.NewInt(30), sqltypes.NewInt(9)}
			m.AfterUpdate(nil, "seq", []sqltypes.Row{before}, []sqltypes.Row{after}, base.ColumnNames())
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cat, m := fixture(t, 10)
			createView(t, m, seqViewDDL)
			base, _ := cat.Table("seq")
			c.muck(m, base)
			if !m.Stale("mv") {
				t.Fatal("expected staleness")
			}
			if err := m.CheckFresh("mv"); err == nil {
				t.Fatal("CheckFresh must fail on a stale view")
			}
		})
	}
}

func TestRefreshClearsStaleness(t *testing.T) {
	cat, m := fixture(t, 10)
	createView(t, m, seqViewDDL)
	base, _ := cat.Table("seq")
	// Fake a staleness marker, then refresh against unchanged (dense) data.
	m.AfterInsert(nil, "seq", []sqltypes.Row{{sqltypes.NewInt(5), sqltypes.NewInt(1)}}, base.ColumnNames())
	if !m.Stale("mv") {
		t.Fatal("expected staleness")
	}
	if err := m.Refresh("mv"); err != nil {
		t.Fatal(err)
	}
	if m.Stale("mv") {
		t.Fatal("refresh must clear staleness")
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
}

func TestShiftInsertDelete(t *testing.T) {
	cat, m := fixture(t, 12)
	createView(t, m, seqViewDDL)
	if err := m.ShiftInsert("mv", 5, 999); err != nil {
		t.Fatal(err)
	}
	if m.Stale("mv") {
		t.Fatal("shift insert must keep the view fresh")
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
	// Base must have 13 dense rows with 999 at position 5.
	base, _ := cat.Table("seq")
	raw, err := m.readDenseSequence(base, "pos", "val")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 13 || raw[4] != 999 {
		t.Fatalf("raw after shift insert = %v", raw)
	}
	if err := m.ShiftDelete("mv", 5); err != nil {
		t.Fatal(err)
	}
	checkViewMatchesCore(t, cat, m, "mv", core.Sliding(2, 1), core.Sum)
	raw, _ = m.readDenseSequence(base, "pos", "val")
	if len(raw) != 12 || raw[4] == 999 {
		t.Fatalf("raw after shift delete = %v", raw)
	}
	if err := m.ShiftInsert("nope", 1, 1); err == nil {
		t.Fatal("unknown view must fail")
	}
}

func TestDropView(t *testing.T) {
	cat, m := fixture(t, 5)
	createView(t, m, seqViewDDL)
	if err := m.Drop("mv"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.MatView("mv"); ok {
		t.Fatal("view survived drop")
	}
	if _, err := cat.Table("__mv_mv"); err == nil {
		t.Fatal("backing table survived drop")
	}
	if err := m.Drop("mv"); err == nil {
		t.Fatal("double drop must fail")
	}
	if err := m.Refresh("mv"); err == nil {
		t.Fatal("refresh of dropped view must fail")
	}
}

func TestCumulativeViewMaintenance(t *testing.T) {
	cat, m := fixture(t, 10)
	createView(t, m, `CREATE MATERIALIZED VIEW cum AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`)
	base, _ := cat.Table("seq")
	cols := base.ColumnNames()
	var id storage.RowID
	var before sqltypes.Row
	base.Heap.Scan(func(i storage.RowID, row sqltypes.Row) bool {
		if row[0].Int() == 4 {
			id, before = i, row
			return false
		}
		return true
	})
	after := sqltypes.Row{sqltypes.NewInt(4), sqltypes.NewInt(-50)}
	base.Heap.Update(id, after)
	m.AfterUpdate(nil, "seq", []sqltypes.Row{before}, []sqltypes.Row{after}, cols)
	if m.Stale("cum") {
		t.Fatal("cumulative update must stay incremental")
	}
	checkViewMatchesCore(t, cat, m, "cum", core.Cumul(), core.Sum)
}

// fakeExec materializes plain views without a full engine: it returns a
// canned result set.
func fakeExec(cols []string, rows []sqltypes.Row) ExecFunc {
	return func(context.Context, sqlparser.SelectStatement) ([]string, []sqltypes.Row, error) {
		out := make([]sqltypes.Row, len(rows))
		copy(out, rows)
		return cols, out, nil
	}
}

func TestPlainViewLifecycle(t *testing.T) {
	cat := catalog.New()
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("x")},
		{sqltypes.NewInt(2), sqltypes.NewString("y")},
	}
	m := NewManager(cat, fakeExec([]string{"a", ""}, rows))
	stmt, _ := sqlparser.Parse(`CREATE MATERIALIZED VIEW pv AS SELECT a, b FROM wherever`)
	if err := m.Create(stmt.(*sqlparser.CreateMatView)); err != nil {
		t.Fatal(err)
	}
	mv, ok := cat.MatView("pv")
	if !ok || mv.Kind != catalog.PlainView {
		t.Fatal("plain view not registered")
	}
	// Unnamed columns get synthesized names.
	if mv.Table.Columns[1].Name != "column_2" {
		t.Fatalf("columns = %+v", mv.Table.Columns)
	}
	if mv.Table.Heap.Len() != 2 {
		t.Fatalf("backing rows = %d", mv.Table.Heap.Len())
	}
	// Plain views ignore DML notifications entirely.
	m.AfterInsert(nil, "wherever", rows, []string{"a", "b"})
	if m.Stale("pv") {
		t.Fatal("plain views have no staleness")
	}
	if err := m.Refresh("pv"); err != nil {
		t.Fatal(err)
	}
	if mv.Table.Heap.Len() != 2 {
		t.Fatalf("refresh lost rows: %d", mv.Table.Heap.Len())
	}
	if err := m.Drop("pv"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Table("__mv_pv"); err == nil {
		t.Fatal("backing table survived drop")
	}
}

func TestPlainViewWithoutExecutor(t *testing.T) {
	cat := catalog.New()
	m := NewManager(cat, nil)
	stmt, _ := sqlparser.Parse(`CREATE MATERIALIZED VIEW pv AS SELECT a FROM t`)
	if err := m.Create(stmt.(*sqlparser.CreateMatView)); err == nil {
		t.Fatal("plain view without an executor must fail")
	}
}

func TestCheckFreshUnknownView(t *testing.T) {
	m := NewManager(catalog.New(), nil)
	if err := m.CheckFresh("nope"); err != nil {
		t.Fatal("unknown names are not the manager's concern")
	}
	if m.Stale("nope") {
		t.Fatal("unknown views are not stale")
	}
}
