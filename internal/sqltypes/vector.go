package sqltypes

import (
	"encoding/binary"
	"math"
)

// This file is the columnar half of the value system: ColVec accumulates a
// column of datums into typed storage ([]int64 / []float64 / []string plus a
// null bitmap) so hot executor loops can run over raw machine values, and
// EncodeKey produces memcomparable byte strings so ORDER BY / PARTITION BY
// sorts become one bytes.Compare per pair instead of N interface-dispatched,
// error-checked Compare calls.

// NullBitmap records which positions of a column are SQL NULL. The zero
// value is an empty bitmap; it grows as positions are set.
type NullBitmap struct {
	bits []uint64
	any  bool
}

// Reset clears the bitmap, keeping capacity for n positions.
func (b *NullBitmap) Reset(n int) {
	words := (n + 63) / 64
	if cap(b.bits) < words {
		b.bits = make([]uint64, words)
	} else {
		b.bits = b.bits[:words]
		for i := range b.bits {
			b.bits[i] = 0
		}
	}
	b.any = false
}

// Set marks position i as NULL. i must be within the Reset size.
func (b *NullBitmap) Set(i int) {
	b.bits[i>>6] |= 1 << (uint(i) & 63)
	b.any = true
}

// Get reports whether position i is NULL.
func (b *NullBitmap) Get(i int) bool {
	return b.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Any reports whether any position is NULL.
func (b *NullBitmap) Any() bool { return b.any }

// ColVec accumulates one column of datums into typed storage. The first
// non-NULL value fixes the element type; a later value of a different type
// (or a float NaN, whose ordering under Compare is not a total order) marks
// the vector invalid, which tells the caller to stay on the boxed Datum
// path. NULLs are recorded in the bitmap and hold a zero slot so positions
// stay aligned with the input.
type ColVec struct {
	// Typ is the element type: Int, Float, or String once a non-NULL value
	// has been seen; Null while the column is empty or all-NULL. Bool and
	// Date store their int64 payloads under their own Typ.
	Typ Type
	// Ints / Floats / Strs hold the payloads; only the slice matching Typ is
	// populated.
	Ints   []int64
	Floats []float64
	Strs   []string
	// Nulls marks the NULL positions.
	Nulls NullBitmap

	n       int
	invalid bool
}

// Reset clears the vector for reuse, keeping capacity for n rows.
func (v *ColVec) Reset(n int) {
	v.Typ = Null
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Nulls.Reset(n)
	v.n = 0
	v.invalid = false
}

// Len returns the number of appended positions.
func (v *ColVec) Len() int { return v.n }

// Valid reports whether the typed views are usable: every non-NULL value
// shared one type and no float was NaN. Invalid vectors still track Len so
// callers can fall back positionally.
func (v *ColVec) Valid() bool { return !v.invalid }

// Append adds one datum. After the vector has gone invalid, only the
// position count advances.
func (v *ColVec) Append(d Datum) {
	i := v.n
	v.n++
	if d.typ == Null {
		v.Nulls.Set(i)
		if v.invalid {
			return
		}
		// Hold a zero slot so typed positions stay aligned.
		switch v.Typ {
		case Int, Bool, Date:
			v.Ints = append(v.Ints, 0)
		case Float:
			v.Floats = append(v.Floats, 0)
		case String:
			v.Strs = append(v.Strs, "")
		}
		return
	}
	if v.invalid {
		return
	}
	if v.Typ == Null {
		// First non-NULL value fixes the type; backfill zero slots for any
		// NULLs already seen.
		v.Typ = d.typ
		switch d.typ {
		case Int, Bool, Date:
			for j := 0; j < i; j++ {
				v.Ints = append(v.Ints, 0)
			}
		case Float:
			for j := 0; j < i; j++ {
				v.Floats = append(v.Floats, 0)
			}
		case String:
			for j := 0; j < i; j++ {
				v.Strs = append(v.Strs, "")
			}
		}
	}
	if d.typ != v.Typ {
		v.invalid = true
		return
	}
	switch d.typ {
	case Int, Bool, Date:
		v.Ints = append(v.Ints, d.i)
	case Float:
		if math.IsNaN(d.f) {
			v.invalid = true
			return
		}
		v.Floats = append(v.Floats, d.f)
	case String:
		v.Strs = append(v.Strs, d.s)
	default:
		v.invalid = true
	}
}

// Datum reconstructs the datum at position i. Valid only while the vector is
// Valid.
func (v *ColVec) Datum(i int) Datum {
	if v.Nulls.Get(i) {
		return NullDatum
	}
	switch v.Typ {
	case Int, Bool, Date:
		return Datum{typ: v.Typ, i: v.Ints[i]}
	case Float:
		return NewFloat(v.Floats[i])
	case String:
		return NewString(v.Strs[i])
	default:
		return NullDatum
	}
}

// ---------------------------------------------------------------------------
// Memcomparable key encoding
// ---------------------------------------------------------------------------

// Key-encoding tags. NULL gets the smallest tag so it sorts before every
// non-NULL value, matching Compare; DESC inverts the whole segment, which
// flips NULLs to the end, matching a reversed comparator.
const (
	keyTagNull    byte = 0x00
	keyTagValue   byte = 0x01
	keyTagNullHi  byte = 0xFF // NULL forced after every value (NULLS LAST asc)
	keyStrEscape  byte = 0x00 // a 0x00 payload byte becomes 0x00 0xFF
	keyStrEscaped byte = 0xFF
	keyStrTermLo  byte = 0x00 // terminator 0x00 0x01: below every escaped byte
	keyStrTermHi  byte = 0x01
)

// EncodeKey appends an order-preserving encoding of d to dst and returns the
// extended slice: for two datums a, b of one comparable column,
// bytes.Compare(EncodeKey(nil, a, desc), EncodeKey(nil, b, desc)) has the
// same sign as Compare(a, b) (negated under desc), and encodings are equal
// exactly when Compare reports 0. The caller guarantees column homogeneity —
// a single non-NULL type per column, no NaN floats, no Int/Float mixing —
// which is what makes a bytewise total order agree with Compare (mixed
// numeric columns compare Int pairs exactly but cross pairs via float64, an
// ordering no single encoding can reproduce). -0.0 encodes as +0.0 so the
// pair stays a tie and stable sorts preserve input order, as the comparator
// path does. Strings are escaped and terminated so a later key segment can
// follow without breaking prefix ordering.
func EncodeKey(dst []byte, d Datum, desc bool) []byte {
	return EncodeKeyNulls(dst, d, desc, desc)
}

// EncodeKeyNulls is EncodeKey with an explicit NULL placement: nullsLast
// positions NULL segments after every non-NULL value of the column in the
// final (post-DESC-inversion) order, nullsLast=false before. EncodeKey's
// default is nullsLast = desc, the placement Compare plus a DESC negation
// induces. The comparator fallback (exec's compareKeyDatums) applies the same
// absolute placement, so both sort paths stay bit-identical.
func EncodeKeyNulls(dst []byte, d Datum, desc, nullsLast bool) []byte {
	start := len(dst)
	switch d.typ {
	case Null:
		// The tag is chosen pre-inversion so the post-inversion position is
		// the requested one: under desc the whole segment is bit-flipped,
		// turning a low tag into a high one and vice versa.
		if nullsLast != desc {
			dst = append(dst, keyTagNullHi)
		} else {
			dst = append(dst, keyTagNull)
		}
	case Int, Bool, Date:
		dst = append(dst, keyTagValue)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(d.i)^(1<<63))
		dst = append(dst, buf[:]...)
	case Float:
		dst = append(dst, keyTagValue)
		f := d.f
		if f == 0 {
			f = 0 // normalize -0.0 to +0.0: Compare treats them as equal
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, buf[:]...)
	case String:
		dst = append(dst, keyTagValue)
		s := d.s
		for i := 0; i < len(s); i++ {
			if s[i] == keyStrEscape {
				dst = append(dst, keyStrEscape, keyStrEscaped)
			} else {
				dst = append(dst, s[i])
			}
		}
		dst = append(dst, keyStrTermLo, keyStrTermHi)
	}
	if desc {
		for i := start; i < len(dst); i++ {
			dst[i] = ^dst[i]
		}
	}
	return dst
}

// KeyEncodable reports whether a homogeneous column of type t can be key-
// normalized by EncodeKey. Every type in the lattice qualifies; what
// disqualifies a column is heterogeneity, which the caller detects while
// gathering values (see ColVec).
func KeyEncodable(t Type) bool {
	switch t {
	case Null, Bool, Int, Float, String, Date:
		return true
	default:
		return false
	}
}

// Comparable reports whether datums of types a and b can be ordered by
// Compare without a type error: identical types always can, and Int/Float
// compare numerically with each other. NULL is comparable with everything.
func Comparable(a, b Type) bool {
	if a == Null || b == Null || a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}
