// Reporting sequences (§6): multi-column ordering through a position
// function, and the two derivation lemmas — ordering reduction (§6.1) and
// partitioning reduction (§6.2) — on a small sales cube.
//
// Scenario: daily sales figures, ordered by (month, day) and partitioned by
// region. The warehouse materialized a fine-grained reporting-function view;
// analysts then ask coarser questions — monthly windows (fewer ordering
// columns) and company-wide windows (fewer partitioning columns) — that are
// answered from the materialized sequences alone.
//
// Run with: go run ./examples/reporting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rfview"
)

const (
	months       = 6
	daysPerMonth = 30
)

func main() {
	// Ordering scheme (month, day): pos(m, d) linearizes the cube row-major.
	pf, err := rfview.NewPosFunc(months, daysPerMonth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position function over (month, day), %d positions\n", pf.Domain())
	k, _ := pf.Pos(2, 4)
	back, _ := pf.Key(k)
	fmt.Printf("pos(2,4) = %d; key(%d) = %v  (the paper's §6 linearization)\n\n", k, k, back)

	// Daily sales per region.
	rng := rand.New(rand.NewSource(2002))
	parts := map[rfview.PartitionKey][]float64{}
	for _, region := range []rfview.PartitionKey{"north", "south"} {
		daily := make([]float64, pf.Domain())
		for i := range daily {
			daily[i] = float64(50 + rng.Intn(100))
		}
		parts[region] = daily
	}

	// The materialized view: a centered 7-day moving sum per region,
	// ordered by (month, day).
	rs, err := rfview.NewReportingSequence(pf, rfview.Sliding(3, 3), rfview.Sum, parts)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := rs.At("north", k)
	fmt.Printf("materialized: 7-day moving sum, e.g. north @ (2,4) = %.0f\n\n", v)

	// ---- §6.1 ordering reduction ------------------------------------------
	// Drop the day column: the analyst wants a 3-month moving sum (previous,
	// current, next month). Derived from the daily view without touching
	// daily data.
	monthly, err := rfview.OrderingReduction(rs, 1, rfview.Sliding(1, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("§6.1 ordering reduction — 3-month centered moving sum per region:")
	for _, region := range []rfview.PartitionKey{"north", "south"} {
		fmt.Printf("  %-6s", region+":")
		for m := 1; m <= months; m++ {
			mv, _ := monthly.At(region, m)
			fmt.Printf(" m%-d=%-7.0f", m, mv)
		}
		fmt.Println()
	}
	// Verify one cell against first principles.
	check := 0.0
	for m := 1; m <= 2; m++ { // months 1–2 feed the window of month 1 (1,1)
		for d := 1; d <= daysPerMonth; d++ {
			p, _ := pf.Pos(m, d)
			check += parts["north"][p-1]
		}
	}
	got, _ := monthly.At("north", 1)
	fmt.Printf("  check north m1 (months 1–2 summed directly): %.0f — %s\n\n",
		check, okMark(check == got))

	// ---- §6.2 partitioning reduction --------------------------------------
	// Drop the region partitioning: company-wide 7-day moving sums. Each
	// region's sequence is complete (header/trailer), so the merge needs no
	// raw data.
	merged, err := rfview.PartitioningReduction(rs,
		rfview.PartitionMerge{"ALL": {"north", "south"}}, rfview.Sliding(3, 3))
	if err != nil {
		log.Fatal(err)
	}
	// In the merged ordering, south's days follow north's; look at the seam.
	seam := pf.Domain() // last position of north
	vSeam, _ := merged.At("ALL", seam)
	fmt.Println("§6.2 partitioning reduction — company-wide 7-day moving sum:")
	fmt.Printf("  value at the north/south seam (pos %d): %.0f\n", seam, vSeam)
	// Verify: window spans north's last 4 days and south's first 3.
	check = 0.0
	for i := seam - 3; i <= seam; i++ {
		check += parts["north"][i-1]
	}
	for i := 1; i <= 3; i++ {
		check += parts["south"][i-1]
	}
	fmt.Printf("  check (north tail + south head summed directly): %.0f — %s\n",
		check, okMark(check == vSeam))
	fmt.Println("\nboth §6 reductions answered from the materialized sequences alone")
}

func okMark(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}
