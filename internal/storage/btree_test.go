package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rfview/internal/sqltypes"
)

func intKey(v int64) sqltypes.Row { return sqltypes.Row{sqltypes.NewInt(v)} }

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(intKey(i*2), RowID(i))
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", bt.Len())
	}
	if err := bt.check(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		id, ok := bt.First(intKey(i * 2))
		if !ok || id != RowID(i) {
			t.Fatalf("First(%d) = (%d,%v), want (%d,true)", i*2, id, ok, i)
		}
	}
	if _, ok := bt.First(intKey(1)); ok {
		t.Error("First(1) should miss")
	}
	if _, ok := bt.First(intKey(-5)); ok {
		t.Error("First(-5) should miss")
	}
	if _, ok := bt.First(intKey(99999)); ok {
		t.Error("First(99999) should miss")
	}
}

func TestBTreeDuplicates(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 300; i++ {
		bt.Insert(intKey(i%7), RowID(i))
	}
	count := 0
	bt.Lookup(intKey(3), func(id RowID) bool {
		if id%7 != 3 {
			t.Fatalf("Lookup(3) yielded id %d", id)
		}
		count++
		return true
	})
	// ids 3, 10, 17, ... < 300: ceil((300-3)/7) = 43.
	if count != 43 {
		t.Fatalf("Lookup(3) yielded %d entries, want 43", count)
	}
	// Delete one specific duplicate and verify the rest survive.
	bt.Delete(intKey(3), RowID(10))
	count = 0
	bt.Lookup(intKey(3), func(id RowID) bool {
		if id == 10 {
			t.Fatal("deleted entry still visible")
		}
		count++
		return true
	})
	if count != 42 {
		t.Fatalf("after delete: %d entries, want 42", count)
	}
	if err := bt.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := int64(1); i <= 500; i++ {
		bt.Insert(intKey(i), RowID(i))
	}
	var got []int64
	bt.Range(intKey(100), intKey(110), func(key sqltypes.Row, _ RowID) bool {
		got = append(got, key[0].Int())
		return true
	})
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Fatalf("Range(100,110) = %v", got)
	}
	// Open lower bound.
	got = got[:0]
	bt.Range(nil, intKey(3), func(key sqltypes.Row, _ RowID) bool {
		got = append(got, key[0].Int())
		return true
	})
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("Range(nil,3) = %v", got)
	}
	// Open upper bound.
	n := 0
	bt.Range(intKey(495), nil, func(sqltypes.Row, RowID) bool { n++; return true })
	if n != 6 {
		t.Fatalf("Range(495,nil) yielded %d, want 6", n)
	}
	// Early termination.
	n = 0
	bt.Range(nil, nil, func(sqltypes.Row, RowID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-terminated range yielded %d, want 5", n)
	}
}

func TestBTreeOrderedIteration(t *testing.T) {
	bt := NewBTree()
	rng := rand.New(rand.NewSource(3))
	vals := rng.Perm(2000)
	for i, v := range vals {
		bt.Insert(intKey(int64(v)), RowID(i))
	}
	prev := int64(-1)
	bt.Range(nil, nil, func(key sqltypes.Row, _ RowID) bool {
		if key[0].Int() <= prev {
			t.Fatalf("out of order: %d after %d", key[0].Int(), prev)
		}
		prev = key[0].Int()
		return true
	})
	if prev != 1999 {
		t.Fatalf("last key %d, want 1999", prev)
	}
}

func TestBTreeDeleteRebalance(t *testing.T) {
	bt := NewBTree()
	const n = 5000
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(n)
	for _, v := range perm {
		bt.Insert(intKey(int64(v)), RowID(v))
	}
	if err := bt.check(); err != nil {
		t.Fatal(err)
	}
	// Delete in a different random order, checking invariants as we go.
	perm2 := rng.Perm(n)
	for i, v := range perm2 {
		bt.Delete(intKey(int64(v)), RowID(v))
		if i%500 == 0 {
			if err := bt.check(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", bt.Len())
	}
	count := 0
	bt.Range(nil, nil, func(sqltypes.Row, RowID) bool { count++; return true })
	if count != 0 {
		t.Fatalf("empty tree yielded %d entries", count)
	}
}

func TestBTreeDeleteAbsent(t *testing.T) {
	bt := NewBTree()
	bt.Insert(intKey(1), 1)
	bt.Delete(intKey(2), 2) // absent key: no-op
	bt.Delete(intKey(1), 9) // right key, wrong row id: no-op
	if bt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeCompositeKeys(t *testing.T) {
	bt := NewBTree()
	for a := int64(1); a <= 10; a++ {
		for b := int64(1); b <= 10; b++ {
			bt.Insert(sqltypes.Row{sqltypes.NewInt(a), sqltypes.NewInt(b)}, RowID(a*100+b))
		}
	}
	// Prefix lookup: all entries with first column = 4.
	n := 0
	bt.Lookup(intKey(4), func(id RowID) bool {
		if id/100 != 4 {
			t.Fatalf("prefix lookup yielded %d", id)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("prefix lookup yielded %d entries, want 10", n)
	}
	// Exact composite lookup.
	id, ok := bt.First(sqltypes.Row{sqltypes.NewInt(7), sqltypes.NewInt(3)})
	if !ok || id != 703 {
		t.Fatalf("First((7,3)) = (%d,%v)", id, ok)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTree()
	words := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, w := range words {
		bt.Insert(sqltypes.Row{sqltypes.NewString(w)}, RowID(i))
	}
	var got []string
	bt.Range(nil, nil, func(key sqltypes.Row, _ RowID) bool {
		got = append(got, key[0].Str())
		return true
	})
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// Property test: the B+tree agrees with a reference map under random
// insert/delete interleavings, and invariants hold throughout.
func TestQuickBTreeVsReference(t *testing.T) {
	type op struct {
		Key    int16
		ID     uint8
		Insert bool
	}
	f := func(ops []op) bool {
		bt := NewBTree()
		ref := make(map[[2]int64]bool)
		for _, o := range ops {
			k := [2]int64{int64(o.Key % 50), int64(o.ID % 20)}
			if o.Insert && !ref[k] {
				bt.Insert(intKey(k[0]), RowID(k[1]))
				ref[k] = true
			} else if !o.Insert && ref[k] {
				bt.Delete(intKey(k[0]), RowID(k[1]))
				delete(ref, k)
			}
		}
		if bt.check() != nil {
			return false
		}
		if bt.Len() != len(ref) {
			return false
		}
		seen := 0
		okAll := true
		bt.Range(nil, nil, func(key sqltypes.Row, id RowID) bool {
			seen++
			if !ref[[2]int64{key[0].Int(), int64(id)}] {
				okAll = false
			}
			return true
		})
		return okAll && seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHashIndex(t *testing.T) {
	hi := NewHashIndex()
	for i := int64(0); i < 100; i++ {
		hi.Insert(intKey(i%10), RowID(i))
	}
	if hi.Len() != 100 {
		t.Fatalf("Len = %d", hi.Len())
	}
	if hi.Ordered() {
		t.Error("hash index must report unordered")
	}
	n := 0
	hi.Lookup(intKey(7), func(id RowID) bool {
		if id%10 != 7 {
			t.Fatalf("Lookup(7) yielded %d", id)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("Lookup(7) yielded %d, want 10", n)
	}
	hi.Delete(intKey(7), RowID(7))
	if _, ok := hi.First(intKey(7)); !ok {
		t.Error("other duplicates must survive a single delete")
	}
	n = 0
	hi.Lookup(intKey(7), func(RowID) bool { n++; return true })
	if n != 9 {
		t.Fatalf("after delete Lookup(7) yielded %d, want 9", n)
	}
	// Early termination.
	n = 0
	hi.Lookup(intKey(3), func(RowID) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-terminated lookup yielded %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("Range on a hash index must panic")
		}
	}()
	hi.Range(nil, nil, nil)
}
