package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkAgainstRecompute verifies that the incrementally maintained sequence
// equals a full recomputation over the maintainer's raw data.
func checkAgainstRecompute(t *testing.T, m *Maintainer, ctx string) {
	t.Helper()
	want, err := ComputeNaive(m.Raw(), m.Seq().Win, m.Seq().Agg)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !EqualSeq(m.Seq(), want, 1e-9) {
		t.Fatalf("%s: maintained sequence diverged from recomputation", ctx)
	}
}

func TestMaintainerUpdateSum(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(40)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			h = 2
		}
		m, err := NewMaintainer(randRaw(rng, n), Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 8; op++ {
			k := 1 + rng.Intn(n)
			if err := m.Update(k, float64(rng.Intn(101)-50)); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, "update")
		}
	}
}

// TestMaintainerUpdateLocality: the §2.3 update rule touches exactly the
// positions k−h … k+l whose windows contain k (clipped to the stored range).
func TestMaintainerUpdateLocality(t *testing.T) {
	m, err := NewMaintainer(make([]float64, 100), Sliding(3, 2), Sum)
	if err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if err := m.Update(50, 7); err != nil {
		t.Fatal(err)
	}
	if m.Touched != 6 { // l+h+1 = 6 positions
		t.Fatalf("interior update touched %d positions, want 6", m.Touched)
	}
	m.ResetStats()
	if err := m.Update(1, 3); err != nil { // clipped at the header
		t.Fatal(err)
	}
	if m.Touched != 6 { // positions -1..4 are all stored (header from -1)
		t.Fatalf("boundary update touched %d positions, want 6", m.Touched)
	}
}

func TestMaintainerUpdateCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	m, err := NewMaintainer(randRaw(rng, 30), Cumul(), Sum)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 10; op++ {
		if err := m.Update(1+rng.Intn(30), float64(rng.Intn(40))); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, m, "cumulative update")
	}
}

func TestMaintainerUpdateCount(t *testing.T) {
	m, err := NewMaintainer([]float64{1, 2, 3, 4, 5}, Sliding(1, 1), Count)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(3, 99); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, m, "count update")
}

func TestMaintainerUpdateMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, agg := range []Agg{Min, Max} {
		m, err := NewMaintainer(randRaw(rng, 25), Sliding(2, 2), agg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 20; op++ {
			if err := m.Update(1+rng.Intn(25), float64(rng.Intn(101)-50)); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, agg.String()+" update")
		}
	}
}

func TestMaintainerInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			l = 2
		}
		m, err := NewMaintainer(randRaw(rng, n), Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 6; op++ {
			k := 1 + rng.Intn(len(m.Raw())+1)
			if err := m.Insert(k, float64(rng.Intn(101)-50)); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, "insert")
		}
	}
}

func TestMaintainerInsertAtEnds(t *testing.T) {
	m, err := NewMaintainer([]float64{10, 20, 30}, Sliding(1, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(1, 5); err != nil { // prepend
		t.Fatal(err)
	}
	checkAgainstRecompute(t, m, "prepend")
	if err := m.Insert(5, 40); err != nil { // append (n+1)
		t.Fatal(err)
	}
	checkAgainstRecompute(t, m, "append")
	if m.Seq().N != 5 {
		t.Fatalf("N = %d after two inserts, want 5", m.Seq().N)
	}
}

func TestMaintainerInsertCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	m, err := NewMaintainer(randRaw(rng, 10), Cumul(), Sum)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 8; op++ {
		if err := m.Insert(1+rng.Intn(len(m.Raw())+1), float64(rng.Intn(20))); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, m, "cumulative insert")
	}
}

func TestMaintainerInsertMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, agg := range []Agg{Min, Max} {
		m, err := NewMaintainer(randRaw(rng, 12), Sliding(1, 2), agg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 8; op++ {
			if err := m.Insert(1+rng.Intn(len(m.Raw())+1), float64(rng.Intn(101)-50)); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, agg.String()+" insert")
		}
		mc, err := NewMaintainer(randRaw(rng, 12), Cumul(), agg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 8; op++ {
			if err := mc.Insert(1+rng.Intn(len(mc.Raw())+1), float64(rng.Intn(101)-50)); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, mc, agg.String()+" cumulative insert")
		}
	}
}

func TestMaintainerDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(30)
		l, h := rng.Intn(4), rng.Intn(4)
		if l+h == 0 {
			h = 3
		}
		m, err := NewMaintainer(randRaw(rng, n), Sliding(l, h), Sum)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 5; op++ {
			if err := m.Delete(1 + rng.Intn(len(m.Raw()))); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, "delete")
		}
	}
}

func TestMaintainerDeleteCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	m, err := NewMaintainer(randRaw(rng, 12), Cumul(), Sum)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 8; op++ {
		if err := m.Delete(1 + rng.Intn(len(m.Raw()))); err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, m, "cumulative delete")
	}
}

func TestMaintainerDeleteMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, agg := range []Agg{Min, Max} {
		m, err := NewMaintainer(randRaw(rng, 15), Sliding(2, 1), agg)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 6; op++ {
			if err := m.Delete(1 + rng.Intn(len(m.Raw()))); err != nil {
				t.Fatal(err)
			}
			checkAgainstRecompute(t, m, agg.String()+" delete")
		}
	}
}

func TestMaintainerMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	m, err := NewMaintainer(randRaw(rng, 20), Sliding(2, 2), Sum)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 60; op++ {
		n := len(m.Raw())
		switch rng.Intn(3) {
		case 0:
			err = m.Update(1+rng.Intn(n), float64(rng.Intn(101)-50))
		case 1:
			err = m.Insert(1+rng.Intn(n+1), float64(rng.Intn(101)-50))
		case 2:
			if n > 4 {
				err = m.Delete(1 + rng.Intn(n))
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstRecompute(t, m, "mixed")
	}
}

func TestMaintainerErrors(t *testing.T) {
	if _, err := NewMaintainer([]float64{1, 2, 3}, Sliding(1, 1), Avg); err == nil {
		t.Error("AVG maintainer must be rejected")
	}
	m, err := NewMaintainer([]float64{1, 2, 3}, Sliding(1, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(0, 1); err == nil {
		t.Error("update position 0 must fail")
	}
	if err := m.Update(4, 1); err == nil {
		t.Error("update past n must fail")
	}
	if err := m.Insert(0, 1); err == nil {
		t.Error("insert position 0 must fail")
	}
	if err := m.Insert(5, 1); err == nil {
		t.Error("insert past n+1 must fail")
	}
	if err := m.Delete(0); err == nil {
		t.Error("delete position 0 must fail")
	}
	if err := m.Delete(4); err == nil {
		t.Error("delete past n must fail")
	}
}

// Property test: a random batch of updates keeps the view consistent.
func TestQuickMaintainerUpdates(t *testing.T) {
	f := func(init []int8, ops []uint16) bool {
		if len(init) < 2 {
			return true
		}
		raw := make([]float64, len(init))
		for i, v := range init {
			raw[i] = float64(v)
		}
		m, err := NewMaintainer(raw, Sliding(2, 1), Sum)
		if err != nil {
			return false
		}
		for _, op := range ops {
			k := int(op)%len(raw) + 1
			if err := m.Update(k, float64(int8(op>>8))); err != nil {
				return false
			}
		}
		want, err := ComputeNaive(m.Raw(), Sliding(2, 1), Sum)
		if err != nil {
			return false
		}
		return EqualSeq(m.Seq(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMaintainThenDerive: the warehouse loop — maintain a view, then answer a
// wider window query from it. Consistency must survive the combination.
func TestMaintainThenDerive(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	m, err := NewMaintainer(randRaw(rng, 40), Sliding(2, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 15; op++ {
		switch rng.Intn(3) {
		case 0:
			err = m.Update(1+rng.Intn(len(m.Raw())), float64(rng.Intn(60)))
		case 1:
			err = m.Insert(1+rng.Intn(len(m.Raw())+1), float64(rng.Intn(60)))
		default:
			err = m.Delete(1 + rng.Intn(len(m.Raw())))
		}
		if err != nil {
			t.Fatal(err)
		}
		got, derr := MinOA(m.Seq(), Sliding(3, 2))
		if derr != nil {
			t.Fatal(derr)
		}
		want, _ := ComputeNaive(m.Raw(), Sliding(3, 2), Sum)
		if !EqualSeq(got, want, 1e-9) {
			t.Fatalf("op %d: derived query from maintained view diverged", op)
		}
	}
}
