package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/rewrite"
)

// TestDifferentialRandomWindows is a randomized three-way differential
// harness: for random data, random materialized windows, and random query
// windows, the native Window operator, the Fig. 2 self-join simulation, and
// every applicable derivation strategy must produce identical results.
func TestDifferentialRandomWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(20020226)) // the conference date
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 10 + rng.Intn(70)
		lx, hx := rng.Intn(4), rng.Intn(4)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := rng.Intn(6), rng.Intn(6)
		if ly+hy == 0 {
			hy = 2
		}
		agg := []string{"SUM", "SUM", "COUNT", "MIN", "MAX"}[rng.Intn(5)]
		if agg == "MIN" || agg == "MAX" {
			// MIN/MAX derivation needs a covering extension.
			dl, dh := rng.Intn(lx+hx+1), rng.Intn(lx+hx+1)
			if dl+dh > lx+hx+1 {
				dh = 0
			}
			ly, hy = lx+dl, hx+dh
			if ly+hy == 0 {
				hy = 1
			}
		}
		seed := rng.Int63()
		q := fmt.Sprintf(`SELECT pos, %s(val) OVER (ORDER BY pos
		  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM seq`, agg, ly, hy)
		viewDDL := fmt.Sprintf(`CREATE MATERIALIZED VIEW mv AS
		  SELECT pos, %s(val) OVER (ORDER BY pos ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS val FROM seq`,
			agg, lx, hx)
		ctx := fmt.Sprintf("trial %d: n=%d agg=%s x̃=(%d,%d) ỹ=(%d,%d)", trial, n, agg, lx, hx, ly, hy)

		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			loadSeq(t, e, n, func(int) int64 { return int64(local.Intn(100) - 50) })
		}

		// Reference: native evaluation.
		nativeOpts := DefaultOptions()
		nativeOpts.UseMatViews = false
		native := New(nativeOpts)
		load(native)
		ref := rowsToPairs(t, mustExec(t, native, q).Rows)

		compare := func(rows map[int64]float64, label string) {
			t.Helper()
			if len(rows) != len(ref) {
				t.Fatalf("%s / %s: cardinality %d vs %d", ctx, label, len(rows), len(ref))
			}
			for k, v := range ref {
				if math.Abs(rows[k]-v) > 1e-9 {
					t.Fatalf("%s / %s: pos %d = %v, want %v", ctx, label, k, rows[k], v)
				}
			}
		}

		// Self-join simulation.
		simOpts := nativeOpts
		simOpts.NativeWindow = false
		sim := New(simOpts)
		load(sim)
		res := mustExec(t, sim, q)
		if res.Rewritten == "" {
			t.Fatalf("%s: self-join rewrite did not fire", ctx)
		}
		compare(rowsToPairs(t, res.Rows), "self-join")

		// Derivation strategies, where a strategy applies.
		for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA, rewrite.StrategyAuto} {
			for _, form := range []rewrite.Form{rewrite.FormDisjunctive, rewrite.FormUnion} {
				opts := DefaultOptions()
				opts.Strategy = strat
				opts.Form = form
				e := New(opts)
				load(e)
				mustExec(t, e, viewDDL)
				dres := mustExec(t, e, q)
				label := fmt.Sprintf("derive/%v/%v", strat, form)
				if dres.Derivation == nil {
					continue // strategy inapplicable for these windows: native fallback already checked
				}
				compare(rowsToPairs(t, dres.Rows), label)
			}
		}
	}
}

// TestDifferentialRandomPartitionedParallel is the randomized differential
// oracle for partition-parallel execution: ~200 random partitioned tables and
// window specs (seeded, reproducible), each evaluated by the four strategies
// of the paper — §2.2 pipelined (native Window), §2.2 Fig. 2 self-join
// simulation, §4 MaxOA derivation, §5 MinOA derivation — with the native and
// derived paths additionally run both sequentially (WindowParallelism=1) and
// through the worker pool (WindowParallelism=4). All answers must agree
// exactly. The parallel engines also materialize their views through the
// pool, covering the mview full-refresh path.
func TestDifferentialRandomPartitionedParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(20020301)) // day the ICDE 2002 program ended
	trials := 200
	if testing.Short() {
		trials = 30
	}
	derivationsFired := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		groups := 1 + rng.Intn(4)
		lx, hx := rng.Intn(3), rng.Intn(3)
		if lx+hx == 0 {
			lx = 1
		}
		ly, hy := rng.Intn(5), rng.Intn(5)
		if ly+hy == 0 {
			hy = 2
		}
		agg := []string{"SUM", "SUM", "COUNT", "MIN", "MAX"}[rng.Intn(5)]
		if agg == "MIN" || agg == "MAX" {
			// MIN/MAX derivation needs a covering extension.
			dl, dh := rng.Intn(lx+hx+1), rng.Intn(lx+hx+1)
			if dl+dh > lx+hx+1 {
				dh = 0
			}
			ly, hy = lx+dl, hx+dh
			if ly+hy == 0 {
				hy = 1
			}
		}
		seed := rng.Int63()
		sizes := make([]int, groups)
		for g := range sizes {
			sizes[g] = 3 + rng.Intn(16) // uneven partitions stress per-partition header/trailer
		}
		q := fmt.Sprintf(`SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM pt`, agg, ly, hy)
		viewDDL := fmt.Sprintf(`CREATE MATERIALIZED VIEW pv AS
		  SELECT grp, pos, %s(val) OVER (PARTITION BY grp ORDER BY pos
		    ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS val FROM pt`, agg, lx, hx)
		ctx := fmt.Sprintf("trial %d: groups=%v agg=%s x̃=(%d,%d) ỹ=(%d,%d)",
			trial, sizes, agg, lx, hx, ly, hy)

		load := func(e *Engine) {
			t.Helper()
			local := rand.New(rand.NewSource(seed))
			mustExec(t, e, `CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`)
			var b strings.Builder
			b.WriteString("INSERT INTO pt VALUES ")
			first := true
			for g, n := range sizes {
				for i := 1; i <= n; i++ {
					if !first {
						b.WriteString(", ")
					}
					first = false
					fmt.Fprintf(&b, "('g%d', %d, %d)", g, i, local.Intn(100)-50)
				}
			}
			mustExec(t, e, b.String())
		}

		// Reference: native evaluation, forced sequential.
		refOpts := DefaultOptions()
		refOpts.UseMatViews = false
		refOpts.WindowParallelism = 1
		refEng := New(refOpts)
		load(refEng)
		ref := partPairs(t, mustExec(t, refEng, q))

		compare := func(rows map[string]float64, label string) {
			t.Helper()
			if len(rows) != len(ref) {
				t.Fatalf("%s / %s: cardinality %d vs %d", ctx, label, len(rows), len(ref))
			}
			for k, v := range ref {
				got, ok := rows[k]
				if !ok {
					t.Fatalf("%s / %s: key %s missing", ctx, label, k)
				}
				if math.Abs(got-v) > 1e-9 {
					t.Fatalf("%s / %s: %s = %v, want %v", ctx, label, k, got, v)
				}
			}
		}

		// Pipelined, partition-parallel.
		parOpts := refOpts
		parOpts.WindowParallelism = 4
		parEng := New(parOpts)
		load(parEng)
		compare(partPairs(t, mustExec(t, parEng, q)), "native/parallel")

		// Fig. 2 self-join simulation (no Window operator in the plan).
		simOpts := refOpts
		simOpts.NativeWindow = false
		sim := New(simOpts)
		load(sim)
		res := mustExec(t, sim, q)
		if res.Rewritten == "" {
			t.Fatalf("%s: self-join rewrite did not fire", ctx)
		}
		compare(partPairs(t, res), "self-join")

		// MaxOA / MinOA derivation, sequential and parallel; the parallel
		// engine also materializes pv through the worker pool.
		for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
			for _, par := range []int{1, 4} {
				opts := DefaultOptions()
				opts.Strategy = strat
				opts.Form = []rewrite.Form{rewrite.FormDisjunctive, rewrite.FormUnion}[trial%2]
				opts.WindowParallelism = par
				e := New(opts)
				load(e)
				mustExec(t, e, viewDDL)
				dres := mustExec(t, e, q)
				if dres.Derivation == nil {
					continue // strategy inapplicable for these windows: native fallback already checked
				}
				label := fmt.Sprintf("derive/%v/parallel=%d", strat, par)
				derivationsFired[fmt.Sprintf("%v", strat)]++
				compare(partPairs(t, dres), label)
			}
		}
	}
	for _, strat := range []rewrite.Strategy{rewrite.StrategyMaxOA, rewrite.StrategyMinOA} {
		if derivationsFired[fmt.Sprintf("%v", strat)] == 0 {
			t.Fatalf("%v never fired across %d trials — oracle is not exercising derivation", strat, trials)
		}
	}
}

// TestDifferentialCumulative mirrors the harness for cumulative views and
// queries.
func TestDifferentialCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(994707)) // the DOI suffix
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(60)
		ly, hy := rng.Intn(5), rng.Intn(5)
		if ly+hy == 0 {
			ly = 1
		}
		seed := rng.Int63()
		load := func(e *Engine) {
			local := rand.New(rand.NewSource(seed))
			loadSeq(t, e, n, func(int) int64 { return int64(local.Intn(60) - 30) })
		}
		q := fmt.Sprintf(`SELECT pos, SUM(val) OVER (ORDER BY pos
		  ROWS BETWEEN %d PRECEDING AND %d FOLLOWING) AS w FROM seq`, ly, hy)

		nativeOpts := DefaultOptions()
		nativeOpts.UseMatViews = false
		native := New(nativeOpts)
		load(native)
		ref := rowsToPairs(t, mustExec(t, native, q).Rows)

		derived := New(DefaultOptions())
		load(derived)
		mustExec(t, derived, `CREATE MATERIALIZED VIEW cumv AS
		  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS val FROM seq`)
		res := mustExec(t, derived, q)
		if res.Derivation == nil {
			t.Fatalf("trial %d: cumulative derivation did not fire", trial)
		}
		if !strings.Contains(res.Rewritten, "cumv") {
			t.Fatalf("trial %d: rewrite does not reference the view: %s", trial, res.Rewritten)
		}
		got := rowsToPairs(t, res.Rows)
		for k, v := range ref {
			if math.Abs(got[k]-v) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v want %v", trial, k, got[k], v)
			}
		}
	}
}
