package plan

import (
	"strings"
	"testing"

	"rfview/internal/exec"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

func collect(t *testing.T, op exec.Operator) []sqltypes.Row {
	t.Helper()
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestPlanUnionAndDistinct(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT pos FROM seq WHERE pos <= 2 UNION SELECT pos FROM seq WHERE pos <= 3 ORDER BY pos LIMIT 2`)
	rows := collect(t, op)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !exec.PlanContains(op, "Distinct") || !exec.PlanContains(op, "UnionAll") {
		t.Fatalf("plan:\n%s", exec.FormatPlan(op))
	}
	op = planQuery(t, cat, DefaultOptions(),
		`SELECT pos FROM seq WHERE pos <= 2 UNION ALL SELECT pos FROM seq WHERE pos <= 2`)
	if exec.PlanContains(op, "Distinct") {
		t.Fatal("UNION ALL must not deduplicate")
	}
	if len(collect(t, op)) != 4 {
		t.Fatal("UNION ALL cardinality wrong")
	}
}

func TestPlanLeftOuterWithWherePushdown(t *testing.T) {
	cat := newTestCatalog(t, false)
	// The left-side-only WHERE conjunct must be pushed below the outer join;
	// the join-spanning conjunct stays above.
	op := planQuery(t, cat, DefaultOptions(), `
	  SELECT t1.a, s.val FROM t1 LEFT OUTER JOIN seq s ON s.pos = t1.a
	  WHERE t1.b > 0 AND COALESCE(s.val, 0) >= 0`)
	plan := exec.FormatPlan(op)
	if !strings.Contains(plan, "LeftOuter") {
		t.Fatalf("plan:\n%s", plan)
	}
	if exec.CountOps(op, "Filter") < 2 {
		t.Fatalf("expected pushed and residual filters:\n%s", plan)
	}
}

func TestPlanJoinOfDerivedTables(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `
	  SELECT l.p, r.p FROM
	    (SELECT pos AS p FROM seq WHERE pos <= 3) AS l,
	    (SELECT pos AS p FROM seq WHERE pos <= 2) AS r
	  WHERE l.p = r.p`)
	rows := collect(t, op)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !exec.PlanContains(op, "Subquery AS l") || !exec.PlanContains(op, "Subquery AS r") {
		t.Fatalf("plan:\n%s", exec.FormatPlan(op))
	}
}

func TestPlanParenthesizedJoinInFrom(t *testing.T) {
	cat := newTestCatalog(t, false)
	// A join nested to the right of another join exercises planRelation's
	// Join branch.
	stmt, err := sqlparser.Parse(`SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.a = t2.a, seq`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := New(cat, DefaultOptions()).PlanSelect(stmt.(sqlparser.SelectStatement))
	if err != nil {
		t.Fatal(err)
	}
	if !exec.PlanContains(op, "LeftOuter") {
		t.Fatalf("plan:\n%s", exec.FormatPlan(op))
	}
}

func TestPlanFromlessAndLiteralOnly(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `SELECT 1 + 1 AS two`)
	rows := collect(t, op)
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanAllFrameKinds(t *testing.T) {
	cat := newTestCatalog(t, false)
	for _, frame := range []string{
		"ROWS UNBOUNDED PRECEDING",
		"ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING",
		"ROWS BETWEEN 2 PRECEDING AND CURRENT ROW",
		"ROWS BETWEEN CURRENT ROW AND 2 FOLLOWING",
		"ROWS BETWEEN 1 FOLLOWING AND 3 FOLLOWING",
		"ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING",
		"", // default frame
	} {
		q := "SELECT pos, SUM(val) OVER (ORDER BY pos " + frame + ") AS w FROM seq"
		op := planQuery(t, cat, DefaultOptions(), q)
		rows := collect(t, op)
		if len(rows) != 20 {
			t.Fatalf("frame %q: %d rows", frame, len(rows))
		}
	}
	// Window without ORDER BY: whole-partition frame.
	op := planQuery(t, cat, DefaultOptions(), `SELECT pos, SUM(val) OVER () AS w FROM seq`)
	rows := collect(t, op)
	for _, r := range rows {
		if r[1].Int() != 2*(20*21/2) { // val = 2*pos summed over 1..20
			t.Fatalf("whole-partition sum = %v", r[1])
		}
	}
}

func TestContainsBareAggregateMatrix(t *testing.T) {
	cases := map[string]bool{
		`SUM(a)`:                          true,
		`1 + SUM(a)`:                      true,
		`SUM(a) OVER (ORDER BY a)`:        false,
		`SUM(SUM(a)) OVER (ORDER BY a)`:   true,
		`CASE WHEN MAX(a) > 1 THEN 1 END`: true,
		`a + b`:                           false,
		`COALESCE(a, MIN(b))`:             true,
		`a IN (1, COUNT(*))`:              true,
		`a BETWEEN 1 AND MAX(b)`:          true,
		`NOT a = AVG(b)`:                  true,
		`a IS NULL`:                       false,
		`SUM(a) OVER (PARTITION BY MAX(b) ORDER BY a)`: true,
	}
	for src, want := range cases {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if got := containsBareAggregate(e); got != want {
			t.Errorf("containsBareAggregate(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestRewriteExprCoversAllNodes(t *testing.T) {
	// Rewrite every literal 1 to 2 across a kitchen-sink expression; the
	// result must re-render with the substitution applied everywhere.
	src := `CASE WHEN a = 1 OR NOT b BETWEEN 1 AND 3 THEN -COALESCE(a, 1)
	        ELSE SUM(a + 1) OVER (PARTITION BY MOD(a, 1) ORDER BY b ROWS 1 PRECEDING) END`
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	out := rewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		if lit, ok := x.(*sqlparser.Literal); ok && lit.Val.Typ() == sqltypes.Int && lit.Val.Int() == 1 {
			return &sqlparser.Literal{Val: sqltypes.NewInt(2)}
		}
		return nil
	})
	rendered := out.String()
	for _, want := range []string{"a = 2", "BETWEEN 2 AND 3", "COALESCE(a, 2)", "MOD(a, 2)", "(a + 2)"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rewrite missing %q: %s", want, rendered)
		}
	}
	// Frame offsets are not literals and stay untouched.
	if !strings.Contains(rendered, "1 PRECEDING") {
		t.Fatalf("frame offset must survive: %s", rendered)
	}
	// IS NULL and IN nodes too.
	e2, _ := sqlparser.ParseExpr(`a IS NOT NULL AND a IN (1, 3)`)
	out2 := rewriteExpr(e2, func(x sqlparser.Expr) sqlparser.Expr {
		if lit, ok := x.(*sqlparser.Literal); ok && lit.Val.Int() == 1 {
			return &sqlparser.Literal{Val: sqltypes.NewInt(9)}
		}
		return nil
	})
	if !strings.Contains(out2.String(), "IN (9, 3)") {
		t.Fatalf("IN rewrite incomplete: %s", out2)
	}
}

func TestPlanGroupByExpressionInOrderBy(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT MOD(pos, 3) AS g, COUNT(*) AS c FROM seq GROUP BY MOD(pos, 3) ORDER BY MOD(pos, 3) DESC`)
	rows := collect(t, op)
	if len(rows) != 3 || rows[0][0].Int() != 2 || rows[2][0].Int() != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlanHavingWithoutSelectAggregate(t *testing.T) {
	cat := newTestCatalog(t, false)
	// HAVING introduces the aggregate; the select list has only group cols.
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT MOD(pos, 4) AS g FROM seq GROUP BY MOD(pos, 4) HAVING SUM(val) > 50 ORDER BY g`)
	rows := collect(t, op)
	// val = 2*pos over pos 1..20; groups by pos%4: sums are
	// g0: 2*(4+8+12+16+20)=120, g1: 2*(1+5+9+13+17)=90, g2: 2*(2+6+10+14+18)=100, g3: 2*(3+7+11+15+19)=110.
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestIndexJoinKeepsPushedFilter is the regression test for a planner bug:
// a single-table predicate pushed onto a relation must survive when that
// relation becomes the probed side of an index nested-loop join (the probe
// reads the heap directly, bypassing the pushed Filter operator).
func TestIndexJoinKeepsPushedFilter(t *testing.T) {
	cat := newTestCatalog(t, true)
	// seq has 20 rows; the probed side (s1) carries a filter pos <= 10.
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT s1.pos, s2.pos FROM seq s1, seq s2
		 WHERE s1.pos = s2.pos AND s1.pos <= 10`)
	if !exec.PlanContains(op, "IndexNestedLoopJoin") {
		t.Skipf("planner picked a different join:\n%s", exec.FormatPlan(op))
	}
	rows := collect(t, op)
	if len(rows) != 10 {
		t.Fatalf("pushed filter lost through the index probe: %d rows, want 10\n%s",
			len(rows), exec.FormatPlan(op))
	}
	// Both probe directions: filter on the left relation of the written join.
	op = planQuery(t, cat, DefaultOptions(),
		`SELECT s1.pos FROM seq s1, t1 WHERE s1.pos = t1.a AND s1.pos <= 3`)
	for _, r := range collect(t, op) {
		if r[0].Int() > 3 {
			t.Fatalf("filter bypassed: %v", r)
		}
	}
}
