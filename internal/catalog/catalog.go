// Package catalog holds the engine's metadata: table schemas, column types,
// index definitions, and materialized-view definitions. It is the layer the
// binder resolves names against and the layer the view-matching rewriter
// consults when it searches for a materialized reporting-function view that
// can answer an incoming query (§3 of the paper).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	rferrors "rfview/errors"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type sqltypes.Type
}

// IndexDef records a created index.
type IndexDef struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Ordered bool
}

// Table couples a schema with its heap storage.
type Table struct {
	Name    string
	Columns []Column
	Heap    *storage.Table
	Indexes []*IndexDef
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// MatViewKind distinguishes the materialized-view flavours the engine knows
// how to exploit during derivation rewrites.
type MatViewKind uint8

// Materialized-view kinds.
const (
	// PlainView is an arbitrary materialized query result; it can be scanned
	// but not used for window derivation.
	PlainView MatViewKind = iota
	// SequenceView is a materialized *complete simple sequence*: columns
	// (pos, val) holding the reporting-function result including header and
	// trailer rows (§3.2). It is the substrate of MaxOA/MinOA rewrites.
	SequenceView
)

// WindowSpec mirrors core.Window at the catalog level, avoiding an import
// cycle: the catalog is below the core-consuming layers.
type WindowSpec struct {
	Cumulative bool
	Preceding  int
	Following  int
}

// String renders the spec the way the paper writes windows.
func (w WindowSpec) String() string {
	if w.Cumulative {
		return "cumulative"
	}
	return fmt.Sprintf("(%d,%d)", w.Preceding, w.Following)
}

// MatView records a materialized view over a base table.
type MatView struct {
	Name string
	Kind MatViewKind
	// Backing table that stores the materialized rows.
	Table *Table

	// For SequenceView: provenance needed by the derivation rewriter and
	// the incremental maintenance machinery.
	BaseTable string // table the sequence was computed over
	PosColumn string // ordering column in the base table
	// PartColumn is the PARTITION BY column for partitioned sequence views
	// ("" for simple sequences). Partitioned views store one complete
	// sequence per partition — the paper's "complete reporting function"
	// (§6.2) — in a backing table (part, pos, val, body).
	PartColumn string
	ValColumn  string     // aggregated column in the base table
	Agg        string     // SUM, COUNT, AVG, MIN, MAX
	Window     WindowSpec // the materialized window
	// BaseRows is the base-table cardinality n at the last (full or
	// incremental) refresh; view positions 1…n are the sequence body, the
	// rest are header/trailer (§3.2). It is atomic because the derivation
	// rewriter reads it lock-free while commits publish new values; the
	// engine updates it inside the commit-publication window so it flips
	// together with the backing rows' visibility.
	BaseRows atomic.Int64
	// SQL text the view was created from (for SHOW / debugging).
	Definition string
}

// Catalog is a thread-safe name → metadata map.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*MatView
	// clock is the shared commit clock every table created through this
	// catalog stamps row versions from, so one snapshot spans all tables.
	clock *txn.Clock
	// schemaVersion counts DDL operations (table/index/view creation and
	// removal). Cached plans record it and revalidate on reuse: any DDL —
	// notably CREATE MATERIALIZED VIEW, which can make a better derivation
	// available for an already-cached query — invalidates every plan.
	schemaVersion uint64
	// pager, when set, puts every subsequently-created table's payloads in
	// paged heap storage behind the shared buffer pool. nil keeps tables
	// resident in memory (library/test mode).
	pager *storage.Pager
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*MatView),
		clock:  txn.NewClock(),
	}
}

// Clock returns the shared commit clock of this catalog's tables.
func (c *Catalog) Clock() *txn.Clock { return c.clock }

// SetPager routes future table creation — base tables and mview backing
// tables alike, since both funnel through CreateTable — into paged heap
// storage owned by p. Call before any table exists; already-created tables
// keep their storage mode.
func (c *Catalog) SetPager(p *storage.Pager) {
	c.mu.Lock()
	c.pager = p
	c.mu.Unlock()
}

func key(name string) string { return strings.ToLower(name) }

// SchemaVersion returns the DDL counter. It increases on every successful
// CreateTable, DropTable, CreateIndex, DropIndex, RegisterMatView, and
// DropMatView.
func (c *Catalog) SchemaVersion() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schemaVersion
}

// CreateTable registers a new table with the given schema.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	if _, ok := c.views[k]; ok {
		return nil, fmt.Errorf("%q already names a materialized view", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(cols))
	for _, col := range cols {
		ck := key(col.Name)
		if seen[ck] {
			return nil, fmt.Errorf("duplicate column %q in table %q", col.Name, name)
		}
		seen[ck] = true
	}
	var heap *storage.Table
	if c.pager != nil {
		h, err := storage.NewPagedTable(c.clock, c.pager, k)
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", name, err)
		}
		heap = h
	} else {
		heap = storage.NewTableWithClock(c.clock)
	}
	t := &Table{Name: name, Columns: append([]Column(nil), cols...), Heap: heap}
	c.tables[k] = t
	c.schemaVersion++
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		return rferrors.New(rferrors.CodeUnknownTable, "table %q does not exist", name)
	}
	delete(c.tables, k)
	c.schemaVersion++
	return nil
}

// Table resolves a table by name. Materialized views resolve too: their
// backing tables are scannable like ordinary tables.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.tables[key(name)]; ok {
		return t, nil
	}
	if v, ok := c.views[key(name)]; ok {
		return v.Table, nil
	}
	return nil, rferrors.New(rferrors.CodeUnknownTable, "table %q does not exist", name)
}

// Tables returns all table names in sorted order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex creates an index over the named columns of a table.
func (c *Catalog) CreateIndex(name, table string, columns []string, unique, ordered bool) (*IndexDef, error) {
	t, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ords := make([]int, len(columns))
	for i, col := range columns {
		ord := t.ColumnIndex(col)
		if ord < 0 {
			return nil, fmt.Errorf("index %q: column %q does not exist in %q", name, col, table)
		}
		ords[i] = ord
	}
	if _, err := t.Heap.AddIndex(name, ords, unique, ordered); err != nil {
		return nil, err
	}
	def := &IndexDef{Name: name, Table: t.Name, Columns: append([]string(nil), columns...), Unique: unique, Ordered: ordered}
	t.Indexes = append(t.Indexes, def)
	c.schemaVersion++
	return def, nil
}

// DropIndex removes an index from a table.
func (c *Catalog) DropIndex(table, name string) error {
	t, err := c.Table(table)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.Heap.DropIndex(name); err != nil {
		return err
	}
	for i, def := range t.Indexes {
		if def.Name == name {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			break
		}
	}
	c.schemaVersion++
	return nil
}

// RegisterMatView records a materialized view whose rows live in view.Table.
func (c *Catalog) RegisterMatView(view *MatView) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(view.Name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("materialized view %q already exists", view.Name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("%q already names a table", view.Name)
	}
	c.views[k] = view
	c.schemaVersion++
	return nil
}

// DropMatView removes a materialized view.
func (c *Catalog) DropMatView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[key(name)]; !ok {
		return rferrors.New(rferrors.CodeUnknownView, "materialized view %q does not exist", name)
	}
	delete(c.views, key(name))
	c.schemaVersion++
	return nil
}

// MatView resolves a materialized view by name.
func (c *Catalog) MatView(name string) (*MatView, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// MatViews returns all materialized views sorted by name.
func (c *Catalog) MatViews() []*MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*MatView, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SequenceViewsOver returns the sequence views materialized over the given
// base table / position column / partition column / value column /
// aggregate, the candidate set the derivation rewriter matches incoming
// window queries against. partCol is "" for unpartitioned queries.
func (c *Catalog) SequenceViewsOver(baseTable, posCol, partCol, valCol, agg string) []*MatView {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*MatView
	for _, v := range c.views {
		if v.Kind != SequenceView {
			continue
		}
		if strings.EqualFold(v.BaseTable, baseTable) &&
			strings.EqualFold(v.PosColumn, posCol) &&
			strings.EqualFold(v.PartColumn, partCol) &&
			strings.EqualFold(v.ValColumn, valCol) &&
			strings.EqualFold(v.Agg, agg) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
