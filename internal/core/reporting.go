package core

import (
	"fmt"
	"sort"
)

// This file implements §6 of the paper: *reporting sequences* — simple
// sequences extended by a multi-column ordering scheme (flattened through a
// position function) and a partitioning scheme — together with the two
// derivation lemmas, ordering reduction (§6.1) and partitioning reduction
// (§6.2).

// PosFunc is the position function of §6: a linear (row-major) ordering of
// multi-column ordering keys. Card[i] is the cardinality of ordering column
// i+1; keys are 1-based in every column, matching the paper's examples.
type PosFunc struct {
	Card []int
}

// NewPosFunc builds a position function over the given per-column
// cardinalities.
func NewPosFunc(card ...int) (PosFunc, error) {
	if len(card) == 0 {
		return PosFunc{}, fmt.Errorf("position function needs at least one ordering column")
	}
	for i, c := range card {
		if c < 1 {
			return PosFunc{}, fmt.Errorf("ordering column %d has cardinality %d; must be >= 1", i+1, c)
		}
	}
	return PosFunc{Card: append([]int(nil), card...)}, nil
}

// Arity returns the number of ordering columns.
func (p PosFunc) Arity() int { return len(p.Card) }

// Domain returns the total number of positions, the product of the
// cardinalities.
func (p PosFunc) Domain() int {
	n := 1
	for _, c := range p.Card {
		n *= c
	}
	return n
}

// Pos returns the global position of the ordering key (k_1, …, k_n) under
// the row-major linear ordering; pos(1,…,1) = 1. For n = 1 this is the
// identity, as the paper notes.
func (p PosFunc) Pos(ks ...int) (int, error) {
	if len(ks) != len(p.Card) {
		return 0, fmt.Errorf("pos: got %d key columns, want %d", len(ks), len(p.Card))
	}
	k := 0
	for i, v := range ks {
		if v < 1 || v > p.Card[i] {
			return 0, fmt.Errorf("pos: key column %d value %d outside [1,%d]", i+1, v, p.Card[i])
		}
		k = k*p.Card[i] + (v - 1)
	}
	return k + 1, nil
}

// Key inverts Pos: it returns the ordering key at global position k.
func (p PosFunc) Key(k int) ([]int, error) {
	if k < 1 || k > p.Domain() {
		return nil, fmt.Errorf("key: position %d outside [1,%d]", k, p.Domain())
	}
	k--
	ks := make([]int, len(p.Card))
	for i := len(p.Card) - 1; i >= 0; i-- {
		ks[i] = k%p.Card[i] + 1
		k /= p.Card[i]
	}
	return ks, nil
}

// Reduce drops the last j ordering columns and returns the position function
// over the retained prefix together with the block size (the number of
// global positions sharing one retained prefix).
func (p PosFunc) Reduce(j int) (PosFunc, int, error) {
	if j < 1 || j >= len(p.Card) {
		return PosFunc{}, 0, fmt.Errorf("ordering reduction must drop 1..%d columns, got %d", len(p.Card)-1, j)
	}
	block := 1
	for _, c := range p.Card[len(p.Card)-j:] {
		block *= c
	}
	reduced, _ := NewPosFunc(p.Card[:len(p.Card)-j]...)
	return reduced, block, nil
}

// PartitionKey identifies one partition of a reporting sequence. Keys are
// rendered strings because the engine's partition columns may be any datum
// type; the core layer only needs equality.
type PartitionKey string

// ReportingSequence is the §6 extension of a simple sequence: per-partition
// complete simple sequences over a shared multi-column ordering scheme.
// A reporting sequence is *complete* (Definition, §6.2) when every partition
// carries its own header and trailer, which the Sequence type guarantees by
// construction.
type ReportingSequence struct {
	Pos  PosFunc
	Win  Window
	Agg  Agg
	Part map[PartitionKey]*Sequence
}

// NewReportingSequence materializes a reporting sequence from per-partition
// raw data laid out in global-position order (index 0 holds position 1).
func NewReportingSequence(pf PosFunc, w Window, agg Agg, parts map[PartitionKey][]float64) (*ReportingSequence, error) {
	rs := &ReportingSequence{Pos: pf, Win: w, Agg: agg, Part: make(map[PartitionKey]*Sequence, len(parts))}
	for key, raw := range parts {
		if len(raw) != pf.Domain() {
			return nil, fmt.Errorf("partition %q has %d values; ordering scheme spans %d positions", key, len(raw), pf.Domain())
		}
		s, err := ComputePipelined(raw, w, agg)
		if err != nil {
			return nil, err
		}
		rs.Part[key] = s
	}
	return rs, nil
}

// Partitions returns the partition keys in sorted order (deterministic
// iteration for tests and printing).
func (rs *ReportingSequence) Partitions() []PartitionKey {
	keys := make([]PartitionKey, 0, len(rs.Part))
	for k := range rs.Part {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// At returns the sequence value at global position k within partition key.
func (rs *ReportingSequence) At(key PartitionKey, k int) (float64, bool) {
	s, ok := rs.Part[key]
	if !ok {
		return 0, false
	}
	return s.AtOK(k)
}

// ---------------------------------------------------------------------------
// §6.1 — ordering reduction
// ---------------------------------------------------------------------------

// OrderingReduction derives a reporting sequence ordered by the first
// n−j ordering columns from one ordered by all n columns (§6.1, Lemma
// "Derivation of Reporting Sequences by Ordering Reduction").
//
// Dropping a suffix of ordering columns collapses each retained prefix into
// a *block* of `blockSize` consecutive global positions. The target window
// targetWin is expressed in block units (l and h count whole blocks, the
// usual reporting-function reading after reduction). Per the lemma, the
// derived value anchored at a block is the window over global positions
//
//	[ pos(prefix−l, 1, …, 1),  pos(prefix+h+1, 1, …, 1) − 1 ]
//
// i.e. a sliding window with l' = l·B and h' = (h+1)·B − 1 at the block's
// first global position. Those per-anchor values are obtained from the
// materialized sequence with the MinOA telescoping (RangeSum), never from
// raw data. Cumulative target windows are likewise supported.
//
// The result maps each partition to the per-block sequence (block index
// 1 … #blocks).
func OrderingReduction(rs *ReportingSequence, j int, targetWin Window) (*ReportingSequence, error) {
	if rs.Agg != Sum && rs.Agg != Count {
		return nil, notDerivable("ordering-reduction", rs.Win, targetWin, "requires SUM or COUNT (collapsing blocks needs addition)")
	}
	reduced, block, err := rs.Pos.Reduce(j)
	if err != nil {
		return nil, err
	}
	if err := targetWin.Validate(); err != nil && !targetWin.Cumulative {
		// A (0,0) block window — "this block only" — is legitimate after
		// reduction even though a size-1 simple window is not.
		if targetWin.Preceding != 0 || targetWin.Following != 0 {
			return nil, err
		}
	}
	nBlocks := reduced.Domain()
	out := &ReportingSequence{Pos: reduced, Win: targetWin, Agg: rs.Agg, Part: make(map[PartitionKey]*Sequence, len(rs.Part))}
	for key, src := range rs.Part {
		dst := newSequence(targetWin, rs.Agg, nBlocks)
		for b := dst.Lo(); b <= dst.Hi(); b++ {
			blo, bhi := targetWin.Bounds(b) // window in block units
			// Global-position range covered by blocks [blo, bhi].
			glo := (blo-1)*block + 1
			ghi := bhi * block
			v, rerr := RangeSum(src, glo, ghi)
			if rerr != nil {
				return nil, rerr
			}
			dst.set(b, v, true)
		}
		out.Part[key] = dst
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// §6.2 — partitioning reduction
// ---------------------------------------------------------------------------

// PartitionMerge describes a partitioning reduction: each target (coarser)
// partition is the ordered concatenation of source partitions. The engine
// derives the map from the dropped partition columns; core receives it
// explicitly.
type PartitionMerge map[PartitionKey][]PartitionKey

// PartitioningReduction derives a reporting sequence with a coarser
// partitioning scheme from a *complete* reporting sequence (§6.2, Lemma
// "Derivation of Reporting Sequences by Partitioning Reduction").
//
// The merged partition's raw data is the concatenation of the source
// partitions' raw data in the given order; a window near a seam spans
// several source partitions. Because every source partition is complete
// (header and trailer present), the contribution of each source partition to
// a merged window is a range sum derivable by MinOA telescoping — no raw
// access is needed, which is exactly what completeness buys (§6.2).
func PartitioningReduction(rs *ReportingSequence, merge PartitionMerge, targetWin Window) (*ReportingSequence, error) {
	if rs.Agg != Sum && rs.Agg != Count {
		return nil, notDerivable("partitioning-reduction", rs.Win, targetWin, "requires SUM or COUNT")
	}
	if err := targetWin.Validate(); err != nil {
		return nil, err
	}
	out := &ReportingSequence{Pos: rs.Pos, Win: targetWin, Agg: rs.Agg, Part: make(map[PartitionKey]*Sequence, len(merge))}
	segLen := rs.Pos.Domain()
	for mergedKey, srcKeys := range merge {
		srcs := make([]*Sequence, len(srcKeys))
		for i, sk := range srcKeys {
			s, ok := rs.Part[sk]
			if !ok {
				return nil, fmt.Errorf("partitioning reduction: source partition %q not materialized", sk)
			}
			srcs[i] = s
		}
		n := segLen * len(srcs)
		dst := newSequence(targetWin, rs.Agg, n)
		for k := dst.Lo(); k <= dst.Hi(); k++ {
			wlo, whi := targetWin.Bounds(k)
			v := 0.0
			for i, s := range srcs {
				// Segment i occupies merged positions [i*segLen+1, (i+1)*segLen].
				off := i * segLen
				llo, lhi := wlo-off, whi-off
				if lhi < 1 || llo > segLen {
					continue
				}
				part, rerr := RangeSum(s, llo, lhi)
				if rerr != nil {
					return nil, rerr
				}
				v += part
			}
			dst.set(k, v, true)
		}
		out.Part[mergedKey] = dst
	}
	return out, nil
}
