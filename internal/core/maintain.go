package core

import (
	"fmt"
	"math"
)

// Maintainer keeps a materialized sequence synchronized with its raw data
// under point updates, inserts and deletes, using the incremental rules of
// §2.3. Every operation touches only the sequence positions whose window
// contains the modified raw position (plus, for insert/delete, the suffix
// shift) — it never recomputes a window aggregate from scratch.
//
// The maintainer owns a copy of the raw data: a data warehouse maintains a
// view against its base table, and §2.3's rules reference both old sequence
// values and raw values.
type Maintainer struct {
	raw []float64
	seq *Sequence

	// exotic counts raw values whose bit pattern the incremental rules cannot
	// reproduce exactly: NaN and ±Inf poison running sums, and −0 creates
	// ties that MIN/MAX band recomputes and pipelined refreshes break
	// differently. While any such value is present, every mutation falls back
	// to a full pipelined recompute, which is bit-identical to REFRESH by
	// construction.
	exotic int

	// Touched counts sequence positions written by incremental maintenance
	// since the last ResetStats — the "locality" the paper argues for.
	Touched int

	// lastFull records whether the most recent mutation took the
	// recomputeAll fallback instead of patching the §2.3 band. Callers that
	// mirror the sequence elsewhere need to know: NaN and Inf poison the
	// pipelined running sums past the band, so the rebuilt sequence can
	// differ at every stored position.
	lastFull bool
}

// FullRecompute reports whether the most recent Update/Insert/Delete rebuilt
// the whole sequence (the exotic-value fallback) rather than patching the
// local band.
func (m *Maintainer) FullRecompute() bool { return m.lastFull }

// exoticVal reports whether v defeats bit-exact incremental maintenance.
func exoticVal(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return true
	}
	return v == 0 && math.Signbit(v) // −0: compares equal to +0, differs bitwise
}

func countExotic(raw []float64) int {
	n := 0
	for _, v := range raw {
		if exoticVal(v) {
			n++
		}
	}
	return n
}

// NewMaintainer materializes the sequence for w/agg over raw and returns a
// maintainer for it. MIN/MAX sequences are only maintainable in the
// "widening" direction (see Update); the paper's footnote in §2.3 makes the
// same restriction.
func NewMaintainer(raw []float64, w Window, agg Agg) (*Maintainer, error) {
	if agg == Avg {
		return nil, fmt.Errorf("maintain SUM and COUNT views and derive AVG; AVG alone is not incrementally maintainable")
	}
	seq, err := ComputePipelined(raw, w, agg)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{raw: append([]float64(nil), raw...), seq: seq, exotic: countExotic(raw)}
	return m, nil
}

// Seq returns the maintained sequence. Callers must not mutate it.
func (m *Maintainer) Seq() *Sequence { return m.seq }

// Raw returns a read-only view of the current raw data. The slice aliases
// the maintainer's internal state: callers must not mutate it or hold it
// across maintenance operations (use RawCopy for an owned copy). The hot
// callers only need Len or a transient read, and the old copy-per-call
// behavior dominated maintenance profiles.
func (m *Maintainer) Raw() []float64 { return m.raw }

// RawCopy returns an owned copy of the current raw data.
func (m *Maintainer) RawCopy() []float64 {
	return append([]float64(nil), m.raw...)
}

// Len returns the raw cardinality n.
func (m *Maintainer) Len() int { return len(m.raw) }

// recomputeAll rebuilds the whole sequence with the pipelined algorithm —
// the fallback while exotic values (NaN, ±Inf, −0) are present. The result
// is bit-identical to a full refresh, which is exactly the contract
// incremental maintenance must preserve.
func (m *Maintainer) recomputeAll() error {
	seq, err := ComputePipelined(m.raw, m.seq.Win, m.seq.Agg)
	if err != nil {
		return err
	}
	m.seq = seq
	m.Touched += seq.Len()
	m.lastFull = true
	return nil
}

// ResetStats zeroes the Touched counter.
func (m *Maintainer) ResetStats() { m.Touched = 0 }

// affected returns the inclusive range of sequence positions whose window
// contains raw position k, clipped to the stored range.
func (m *Maintainer) affected(k int) (lo, hi int) {
	if m.seq.Win.Cumulative {
		lo, hi = k, m.seq.Hi()
	} else {
		lo, hi = k-m.seq.Win.Following, k+m.seq.Win.Preceding
	}
	if lo < m.seq.Lo() {
		lo = m.seq.Lo()
	}
	if hi > m.seq.Hi() {
		hi = m.seq.Hi()
	}
	return lo, hi
}

// Update changes the raw value at position k (1-based) to v and patches the
// affected sequence values with the §2.3 update rule
//
//	x̃'_i = x̃_i − x_k + x'_k    for k−h ≤ i ≤ k+l,
//
// leaving every other position untouched. For MIN/MAX the rule
// x̃'_i = min(x̃_i, x'_k) applies only when the new value can't *raise* a
// minimum (resp. lower a maximum); otherwise the affected band is
// recomputed — still local, as the paper's footnote concedes.
func (m *Maintainer) Update(k int, v float64) error {
	m.lastFull = false
	if k < 1 || k > len(m.raw) {
		return fmt.Errorf("update position %d out of range [1,%d]", k, len(m.raw))
	}
	old := m.raw[k-1]
	m.raw[k-1] = v
	if exoticVal(old) {
		m.exotic--
	}
	if exoticVal(v) {
		m.exotic++
	}
	// An exotic value anywhere in the raw data — or one leaving right now,
	// whose bits still contaminate the old sequence values the incremental
	// rules difference against — forces the refresh-identical fallback.
	if m.exotic > 0 || exoticVal(old) || exoticVal(v) {
		return m.recomputeAll()
	}
	lo, hi := m.affected(k)
	switch m.seq.Agg {
	case Sum:
		delta := v - old
		for i := lo; i <= hi; i++ {
			m.seq.set(i, m.seq.At(i)+delta, true)
			m.Touched++
		}
	case Count:
		// COUNT is invariant under value updates.
	case Min, Max:
		improves := (m.seq.Agg == Min && v <= old) || (m.seq.Agg == Max && v >= old)
		for i := lo; i <= hi; i++ {
			if improves {
				cur, ok := m.seq.AtOK(i)
				if !ok || (m.seq.Agg == Min && v < cur) || (m.seq.Agg == Max && v > cur) {
					m.seq.set(i, v, true)
				}
			} else {
				wlo, whi := m.seq.Win.Bounds(i)
				nv, ok := aggregate(m.raw, m.seq.Agg, wlo, whi)
				m.seq.set(i, nv, ok)
			}
			m.Touched++
		}
	}
	return nil
}

// Insert inserts raw value v at position k (1-based; existing positions
// k, k+1, … shift right) and patches the sequence with the §2.3 insert rule:
//
//	x̃'_i = x̃_i                      i < k−h      (unchanged)
//	x̃'_i = v + x̃_i − x_{i+h}        k−h ≤ i ≤ k+l (band: window gains v,
//	                                               loses its old last value)
//	x̃'_i = x̃_{i−1}                  i > k+l      (pure shift)
//
// The raw values on the right-hand side are the *pre-insert* ones. The
// sequence grows by one position at each end of its stored range.
func (m *Maintainer) Insert(k int, v float64) error {
	m.lastFull = false
	n := len(m.raw)
	if k < 1 || k > n+1 {
		return fmt.Errorf("insert position %d out of range [1,%d]", k, n+1)
	}
	oldRaw := m.raw
	oldSeq := m.seq
	// Splice the raw data.
	m.raw = make([]float64, 0, n+1)
	m.raw = append(m.raw, oldRaw[:k-1]...)
	m.raw = append(m.raw, v)
	m.raw = append(m.raw, oldRaw[k-1:]...)
	if exoticVal(v) {
		m.exotic++
	}
	if m.exotic > 0 {
		return m.recomputeAll()
	}

	if m.seq.Win.Cumulative {
		// Cumulative insert: prefix unchanged, suffix shifts and gains v.
		ns := newSequence(Cumul(), oldSeq.Agg, n+1)
		for i := 0; i < k; i++ {
			ov, ook := oldSeq.AtOK(i)
			ns.set(i, ov, ook)
		}
		for i := k; i <= n+1; i++ {
			switch oldSeq.Agg {
			case Sum:
				ns.set(i, oldSeq.At(i-1)+v, true)
			case Count:
				ns.set(i, float64(i), true)
			case Min, Max:
				prev, ok := ns.AtOK(i - 1)
				v2, ok2 := combineMinMax(oldSeq.Agg, prev, ok, rawAtNew(m.raw, i))
				ns.set(i, v2, ok2)
			}
			m.Touched++
		}
		m.seq = ns
		return nil
	}

	l, h := oldSeq.Win.Preceding, oldSeq.Win.Following
	ns := newSequence(oldSeq.Win, oldSeq.Agg, n+1)
	for i := ns.Lo(); i <= ns.Hi(); i++ {
		switch {
		case i < k-h:
			ov, ook := oldSeq.AtOK(i)
			ns.set(i, ov, ook)
		case i > k+l:
			ov, ook := oldSeq.AtOK(i - 1)
			ns.set(i, ov, ook)
		default: // band
			m.Touched++
			switch oldSeq.Agg {
			case Sum:
				ns.set(i, v+oldSeq.At(i)-rawAt(oldRaw, i+h), true)
			case Count:
				wlo, whi := ns.Win.Bounds(i)
				cv, cok := aggregate(m.raw, Count, wlo, whi)
				ns.set(i, cv, cok)
			case Min, Max:
				wlo, whi := ns.Win.Bounds(i)
				nv, ok := aggregate(m.raw, oldSeq.Agg, wlo, whi)
				ns.set(i, nv, ok)
			}
		}
	}
	m.seq = ns
	return nil
}

// Delete removes the raw value at position k (1-based) and patches the
// sequence with the §2.3 delete rule:
//
//	x̃'_i = x̃_i                      i < k−h       (unchanged)
//	x̃'_i = x̃_i − x_k + x_{i+h+1}    k−h ≤ i < k+l (band)
//	x̃'_i = x̃_{i+1}                  i ≥ k+l       (pure shift)
//
// with pre-delete raw values on the right.
func (m *Maintainer) Delete(k int) error {
	m.lastFull = false
	n := len(m.raw)
	if k < 1 || k > n {
		return fmt.Errorf("delete position %d out of range [1,%d]", k, n)
	}
	oldRaw := m.raw
	oldSeq := m.seq
	deleted := oldRaw[k-1]
	m.raw = append(append([]float64(nil), oldRaw[:k-1]...), oldRaw[k:]...)
	if exoticVal(deleted) {
		m.exotic--
	}
	if m.exotic > 0 || exoticVal(deleted) {
		return m.recomputeAll()
	}

	if oldSeq.Win.Cumulative {
		ns := newSequence(Cumul(), oldSeq.Agg, n-1)
		for i := 0; i < k; i++ {
			ov, ook := oldSeq.AtOK(i)
			ns.set(i, ov, ook)
		}
		for i := k; i <= n-1; i++ {
			switch oldSeq.Agg {
			case Sum:
				ns.set(i, oldSeq.At(i+1)-deleted, true)
			case Count:
				ns.set(i, float64(i), true)
			case Min, Max:
				v, ok := aggregate(m.raw, oldSeq.Agg, 1, i)
				ns.set(i, v, ok)
			}
			m.Touched++
		}
		m.seq = ns
		return nil
	}

	l, h := oldSeq.Win.Preceding, oldSeq.Win.Following
	ns := newSequence(oldSeq.Win, oldSeq.Agg, n-1)
	for i := ns.Lo(); i <= ns.Hi(); i++ {
		switch {
		case i < k-h:
			ov, ook := oldSeq.AtOK(i)
			ns.set(i, ov, ook)
		case i >= k+l:
			ov, ook := oldSeq.AtOK(i + 1)
			ns.set(i, ov, ook)
		default: // band: k−h ≤ i < k+l
			m.Touched++
			switch oldSeq.Agg {
			case Sum:
				ns.set(i, oldSeq.At(i)-deleted+rawAt(oldRaw, i+h+1), true)
			default:
				wlo, whi := ns.Win.Bounds(i)
				nv, ok := aggregate(m.raw, oldSeq.Agg, wlo, whi)
				ns.set(i, nv, ok)
			}
		}
	}
	m.seq = ns
	return nil
}

// rawAtNew is rawAt against the post-modification raw slice.
func rawAtNew(raw []float64, k int) float64 { return rawAt(raw, k) }

func combineMinMax(agg Agg, prev float64, prevOK bool, cur float64) (float64, bool) {
	if !prevOK {
		return cur, true
	}
	if agg == Min {
		if cur < prev {
			return cur, true
		}
		return prev, true
	}
	if cur > prev {
		return cur, true
	}
	return prev, true
}
