// Package wal is the durability subsystem of rfview: a logical write-ahead
// log of committed DDL/DML/REFRESH statements, periodic snapshots of the
// whole engine state, and crash recovery that replays the WAL tail through
// the normal engine exec path.
//
// The design leans on one property of the engine: it is deterministic. A
// statement replayed against the state it originally saw reproduces exactly
// the state it originally produced — including materialized sequence views
// and their §2.3 maintainer state, which are pure functions of the base
// tables they were declared over. That makes a *logical* log (statement
// text) a complete redo log, with none of the page-level machinery a
// physical WAL needs.
//
// On-disk layout under the data directory:
//
//	wal/wal-<firstLSN>.seg    log segments, rotated by size
//	snap-<lsn>.snap           snapshots; <lsn> is the last record folded in
//	snap-*.tmp                in-progress snapshot writes (ignored, removed)
//
// Record framing (this file): every record is
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) of the payload
//	payload =  uint64 LE LSN ++ statement SQL (UTF-8)
//
// A reader stops at the first record whose header is short, whose length is
// implausible, or whose CRC does not match — the torn-tail rule. Everything
// before that point is trusted; everything from it on is discarded.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// maxRecordBytes bounds one record's payload; longer lengths in a header are
// treated as tail corruption rather than honored as allocations.
const maxRecordBytes = 16 << 20

// segMagic opens every segment file; a file without it is not replayed.
const segMagic = "RFWAL001"

// Record is one logical WAL entry.
type Record struct {
	// LSN is the log sequence number, strictly increasing across segments.
	LSN uint64
	// SQL is the canonical text of the logged statement (stmt.String()).
	SQL string
}

// appendRecord serializes a record onto buf and returns the extended slice.
func appendRecord(buf []byte, rec Record) []byte {
	payloadLen := 8 + len(rec.SQL)
	var hdr [16]byte // 4 len + 4 crc + 8 lsn
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(hdr[8:16], rec.LSN)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:16])
	crc.Write([]byte(rec.SQL))
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, rec.SQL...)
}

// readRecords parses every complete, checksummed record from data (one
// segment's contents after the magic). It returns the records and the byte
// offset of the first bad record; ok is false when the segment ended mid-
// record or with a CRC mismatch — the torn-tail case.
func readRecords(data []byte) (recs []Record, goodLen int, ok bool) {
	off := 0
	for {
		if off == len(data) {
			return recs, off, true
		}
		if len(data)-off < 8 {
			return recs, off, false // torn header
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if payloadLen < 8 || payloadLen > maxRecordBytes || len(data)-off-8 < payloadLen {
			return recs, off, false // implausible length or torn payload
		}
		payload := data[off+8 : off+8+payloadLen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return recs, off, false // bad CRC
		}
		recs = append(recs, Record{
			LSN: binary.LittleEndian.Uint64(payload[0:8]),
			SQL: string(payload[8:]),
		})
		off += 8 + payloadLen
	}
}

// writeMagic writes the segment header.
func writeMagic(w io.Writer) error {
	_, err := io.WriteString(w, segMagic)
	return err
}

// checkMagic validates and strips the segment header.
func checkMagic(data []byte) ([]byte, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("wal: bad segment magic")
	}
	return data[len(segMagic):], nil
}
