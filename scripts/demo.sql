-- rfview demo script: the paper's whole story in one rfsql session.
-- Replay with:  go run ./cmd/rfsql -f scripts/demo.sql

-- A sequence table with dense positions (the paper's sequence model).
CREATE TABLE seq (pos INTEGER, val INTEGER);
INSERT INTO seq VALUES
  (1, 4), (2, 8), (3, 15), (4, 16), (5, 23),
  (6, 42), (7, 8), (8, 4), (9, 2), (10, 1);
CREATE UNIQUE INDEX seq_pk ON seq (pos);

-- Reporting functions, natively (Fig. 1 syntax): a centered 3-row moving
-- sum and the cumulative sum.
SELECT pos, val,
  SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS mv3,
  SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS cum
FROM seq ORDER BY pos;

-- Materialize the complete sequence x̃ = (2,1) (§3.2): note the header row
-- at position 0 and trailer rows at 11, 12.
CREATE MATERIALIZED VIEW matseq AS
  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val
  FROM seq;
SELECT pos, val FROM matseq ORDER BY pos;

-- The paper's Fig. 6 pair: ỹ = (3,1) answered FROM THE VIEW via MaxOA/MinOA
-- (turn .explain on to see the rewritten operator pattern).
SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w
FROM seq ORDER BY pos;

-- Incremental maintenance (§2.3): a value update patches only the W view
-- positions whose window contains it; derivations stay correct.
UPDATE seq SET val = 100 WHERE pos = 5;
SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w
FROM seq ORDER BY pos;

-- Appends fold in incrementally too.
INSERT INTO seq VALUES (11, 7);
SELECT pos, val FROM matseq WHERE pos >= 9 ORDER BY pos;

-- The grouped-and-windowed two-step (§1): daily totals with a running sum.
CREATE TABLE sales (day INTEGER, amt INTEGER);
INSERT INTO sales VALUES (1, 10), (1, 20), (2, 30), (2, 40), (3, 50);
SELECT day, SUM(SUM(amt)) OVER (ORDER BY day ROWS UNBOUNDED PRECEDING) AS running
FROM sales GROUP BY day ORDER BY day;
