package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	rferrors "rfview/errors"
)

// These tests pin the shared-sort multi-window plan end to end: EXPLAIN
// provenance, bit-exactness against the unshared plan (DisableSharedSort),
// spill-forced shared sorts, cancellation, and the sort-accounting metrics.

func explain(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	res, err := e.ExecContext(context.Background(), "EXPLAIN "+sql)
	if err != nil {
		t.Fatalf("EXPLAIN: %v", err)
	}
	return res.Plan
}

// loadShared creates d(g, h, k1, k2, v): g/h are small-domain partition
// columns, k1/k2 duplicate-heavy order columns (k1 nullable), v the value.
func loadShared(t *testing.T, e *Engine, n int, seed int64) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE d (g INTEGER, h INTEGER, k1 INTEGER, k2 INTEGER, v INTEGER)`)
	rng := rand.New(rand.NewSource(seed))
	bulkInsert(t, e, "d", n, func(i int) string {
		k1 := fmt.Sprint(rng.Intn(10))
		if rng.Intn(10) == 0 {
			k1 = "NULL"
		}
		return fmt.Sprintf("(%d, %d, %s, %d, %d)",
			rng.Intn(4), rng.Intn(3), k1, rng.Intn(5), rng.Intn(101)-50)
	})
}

// TestSharedSortExplain is the acceptance shape: four OVER clauses over two
// spec classes plan exactly two shared Sorts, every Window consumes one
// (sort=shared), and the Ordinal/Restore bracket is visible.
func TestSharedSortExplain(t *testing.T) {
	e := newEngine(t)
	loadShared(t, e, 50, 1)
	plan := explain(t, e, `SELECT
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		COUNT(v) OVER (PARTITION BY g ORDER BY k1, g) AS w2,
		MIN(v) OVER (ORDER BY k1 DESC) AS w3,
		MAX(v) OVER (ORDER BY k1 DESC, k2) AS w4
		FROM d`)
	if got := strings.Count(plan, "shared=win"); got != 2 {
		t.Errorf("%d shared Sorts, want 2 (one per class):\n%s", got, plan)
	}
	if got := strings.Count(plan, "sort=shared"); got != 4 {
		t.Errorf("%d sort=shared windows, want 4:\n%s", got, plan)
	}
	for _, want := range []string{"Ordinal __rf_ord", "Restore input-order", "class=1", "class=2"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// The second class re-sorts an already-ordered stream — the full re-sort
	// the sequencing could not avoid is flagged.
	if !strings.Contains(plan, "resort=full") {
		t.Errorf("plan missing resort=full on the second class sort:\n%s", plan)
	}
}

// TestSharedSortExplainSegmented: same partition set with divergent orders is
// one class and one Sort; the divergent member re-sorts within partition
// segments instead of sorting the stream again.
func TestSharedSortExplainSegmented(t *testing.T) {
	e := newEngine(t)
	loadShared(t, e, 50, 2)
	plan := explain(t, e, `SELECT
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		MIN(v) OVER (PARTITION BY g ORDER BY k2 DESC) AS w2
		FROM d`)
	if got := strings.Count(plan, "shared=win"); got != 1 {
		t.Errorf("%d shared Sorts, want 1:\n%s", got, plan)
	}
	if !strings.Contains(plan, "sort=shared") || !strings.Contains(plan, "resort=segmented") {
		t.Errorf("plan missing sort=shared / resort=segmented split:\n%s", plan)
	}
}

// TestSharedSortDisabledExplain: the opt-out restores per-operator sorting —
// no shared Sorts, no bracket.
func TestSharedSortDisabledExplain(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableSharedSort = true
	e := New(opts)
	loadShared(t, e, 50, 3)
	plan := explain(t, e, `SELECT
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		MIN(v) OVER (ORDER BY k2) AS w2
		FROM d`)
	for _, bad := range []string{"shared=win", "sort=shared", "Ordinal", "Restore"} {
		if strings.Contains(plan, bad) {
			t.Errorf("DisableSharedSort plan contains %q:\n%s", bad, plan)
		}
	}
}

// randOver draws one OVER clause: a partition-set choice crossed with an
// order choice (prefix chains, DESC, explicit NULLS placement), so repeated
// draws produce equal specs, prefix specs, segmented classes and disjoint
// classes.
func randOver(rng *rand.Rand) string {
	parts := []string{
		"",
		"PARTITION BY g",
		"PARTITION BY h",
		"PARTITION BY g, h",
		"PARTITION BY h, g",
	}
	orders := []string{
		"",
		"ORDER BY k1",
		"ORDER BY k1, k2",
		"ORDER BY k1 DESC",
		"ORDER BY k1 NULLS LAST",
		"ORDER BY k1 DESC NULLS FIRST",
		"ORDER BY k2, k1 DESC",
		"ORDER BY k2 DESC",
	}
	p, o := parts[rng.Intn(len(parts))], orders[rng.Intn(len(orders))]
	if p == "" && o == "" {
		o = "ORDER BY k1"
	}
	return strings.TrimSpace(p + " " + o)
}

func randAgg(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0:
		return "SUM(v)"
	case 1:
		return "COUNT(v)"
	case 2:
		return "COUNT(*)"
	case 3:
		return "MIN(v)"
	case 4:
		return "MAX(v)"
	default:
		return "AVG(v)"
	}
}

// TestDifferentialMultiWindowShared is the shared-sort oracle: randomized
// multi-OVER queries must return bit-identical rows — values and row order —
// on the shared and the unshared plan, sequential and parallel, in-memory
// and under a spill-forcing budget.
func TestDifferentialMultiWindowShared(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 10
	}
	const rows = 300
	configs := []struct {
		name        string
		parallelism int
		budget      int64
	}{
		{"seq", 1, 0},
		{"par", 4, 0},
		{"seq/spill", 1, 2 << 10},
		{"par/spill", 4, 2 << 10},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			mk := func(disable bool) *Engine {
				opts := DefaultOptions()
				opts.WindowParallelism = cfg.parallelism
				opts.DisableSharedSort = disable
				if cfg.budget > 0 {
					return newSpillEngine(t, opts, cfg.budget)
				}
				return New(opts)
			}
			shared, unshared := mk(false), mk(true)
			loadShared(t, shared, rows, 994707)
			loadShared(t, unshared, rows, 994707)

			rng := rand.New(rand.NewSource(20020226 + int64(cfg.parallelism) + cfg.budget))
			for trial := 0; trial < trials; trial++ {
				nOver := 2 + rng.Intn(4)
				items := make([]string, nOver)
				for i := range items {
					items[i] = fmt.Sprintf("%s OVER (%s) AS w%d", randAgg(rng), randOver(rng), i)
				}
				q := "SELECT g, h, k1, k2, v, " + strings.Join(items, ", ") + " FROM d"

				a, err := shared.ExecContext(context.Background(), q)
				if err != nil {
					t.Fatalf("shared: %q: %v", q, err)
				}
				b, err := unshared.ExecContext(context.Background(), q)
				if err != nil {
					t.Fatalf("unshared: %q: %v", q, err)
				}
				if len(a.Rows) != len(b.Rows) {
					t.Fatalf("%q: %d vs %d rows", q, len(a.Rows), len(b.Rows))
				}
				for i := range a.Rows {
					if a.Rows[i].String() != b.Rows[i].String() {
						t.Fatalf("%q: row %d differs:\nshared:   %s\nunshared: %s",
							q, i, a.Rows[i], b.Rows[i])
					}
				}
			}
			if cfg.budget > 0 {
				if shared.SpillStats().Runs.Load() == 0 {
					t.Error("budgeted shared engine never spilled")
				}
				// The buffer pool's resident pages are a legitimate standing
				// charge; anything beyond them is a leak.
				if used := shared.SpillBudget().Used() - shared.StorageStats().BytesResident; used != 0 {
					t.Errorf("shared engine leaked %d budget bytes", used)
				}
			}
		})
	}
}

// TestSharedSortSpillForced: a multi-class query under a tiny budget routes
// the shared class Sorts through the external sorter, releases every budget
// byte, and still matches the in-memory unshared reference.
func TestSharedSortSpillForced(t *testing.T) {
	budgeted := newSpillEngine(t, DefaultOptions(), 2<<10)
	refOpts := DefaultOptions()
	refOpts.MemoryBudgetBytes = -1 // budget explicitly disabled
	reference := New(refOpts)
	loadShared(t, budgeted, 800, 7)
	loadShared(t, reference, 800, 7)
	q := `SELECT g, k1, v,
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		COUNT(v) OVER (PARTITION BY g ORDER BY k1, k2) AS w2,
		MIN(v) OVER (ORDER BY k2 DESC) AS w3
		FROM d`
	got := mustExec(t, budgeted, q)
	want := mustExec(t, reference, q)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%d vs %d rows", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if got.Rows[i].String() != want.Rows[i].String() {
			t.Fatalf("row %d differs:\nspilled:   %s\nin-memory: %s", i, got.Rows[i], want.Rows[i])
		}
	}
	if budgeted.SpillStats().Runs.Load() == 0 {
		t.Error("budgeted engine never spilled")
	}
	if used := budgeted.SpillBudget().Used() - budgeted.StorageStats().BytesResident; used != 0 {
		t.Errorf("budget leak: %d bytes still charged", used)
	}
}

// TestCancelMidSharedSort: cancelling a multi-class shared-sort query under
// a spill budget returns promptly, releases the budget, and removes every
// spill run file.
func TestCancelMidSharedSort(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.WindowParallelism = 4
	opts.SpillDir = dir
	e := newSpillEngine(t, opts, 2<<10)
	mustExec(t, e, `CREATE TABLE big (g INTEGER, k1 INTEGER, k2 INTEGER, v INTEGER)`)
	rng := rand.New(rand.NewSource(11))
	bulkInsert(t, e, "big", 60000, func(i int) string {
		return fmt.Sprintf("(%d, %d, %d, %d)", rng.Intn(8), rng.Intn(1000), rng.Intn(1000), i)
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.ExecContext(ctx, `SELECT
			SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
			COUNT(v) OVER (PARTITION BY g ORDER BY k1, k2) AS w2,
			MIN(v) OVER (ORDER BY k2 DESC) AS w3,
			MAX(v) OVER (ORDER BY k2 DESC, k1) AS w4
			FROM big`)
		done <- err
	}()
	time.Sleep(15 * time.Millisecond)
	cancel()
	cancelled := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, rferrors.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		if took := time.Since(cancelled); took > cancelLatencyBudget {
			t.Errorf("query returned %v after cancel, want <%v", took, cancelLatencyBudget)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled shared-sort query never returned")
	}
	if used := e.SpillBudget().Used() - e.StorageStats().BytesResident; used != 0 {
		t.Errorf("budget leak after cancel: %d bytes", used)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "run-") && strings.HasSuffix(ent.Name(), ".spill") {
			t.Errorf("spill run file %s left after cancel", ent.Name())
		}
	}
	// The engine stays usable.
	res := mustExec(t, e, `SELECT COUNT(*) AS n FROM big GROUP BY g LIMIT 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("post-cancel query returned %d rows", len(res.Rows))
	}
}

// TestSharedSortMetrics pins the three sort-accounting gauges: a two-class
// query performs two sorts and shares them across four windows; a segmented
// query adds one performed and one segmented consumption.
func TestSharedSortMetrics(t *testing.T) {
	e := newEngine(t)
	loadShared(t, e, 60, 5)
	mustExec(t, e, `SELECT
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		COUNT(v) OVER (PARTITION BY g ORDER BY k1, k2) AS w2,
		MIN(v) OVER (ORDER BY k2) AS w3,
		MAX(v) OVER (ORDER BY k2, k1) AS w4
		FROM d`)
	text := e.Metrics().Expose()
	if got := metricValue(t, text, "rfview_window_sorts_performed_total"); got != 2 {
		t.Errorf("sorts_performed = %v, want 2", got)
	}
	if got := metricValue(t, text, "rfview_window_sorts_shared_total"); got != 4 {
		t.Errorf("sorts_shared = %v, want 4", got)
	}
	mustExec(t, e, `SELECT
		SUM(v) OVER (PARTITION BY g ORDER BY k1) AS w1,
		MIN(v) OVER (PARTITION BY g ORDER BY k2 DESC) AS w2
		FROM d`)
	text = e.Metrics().Expose()
	if got := metricValue(t, text, "rfview_window_sorts_performed_total"); got != 3 {
		t.Errorf("after segmented query: sorts_performed = %v, want 3", got)
	}
	if got := metricValue(t, text, "rfview_window_sorts_segmented_total"); got != 1 {
		t.Errorf("sorts_segmented = %v, want 1", got)
	}
}
