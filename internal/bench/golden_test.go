package bench

import (
	"flag"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPatternsGolden locks the Fig. 2/4/10/13 rewrites and their physical
// plans against a golden file: any change to the generated SQL or to plan
// selection shows up as a diff. Regenerate intentionally with
// `go test ./internal/bench -run Golden -update`.
func TestPatternsGolden(t *testing.T) {
	report, err := PatternsReport()
	if err != nil {
		t.Fatal(err)
	}
	const path = "testdata/patterns.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if string(want) != report {
		t.Fatalf("patterns drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", report, want)
	}
}
