package exec

import (
	"rfview/internal/sqltypes"
)

// Typed window kernels: the §2.2 slide (Add/Remove) and the MIN/MAX monotonic
// deque specialized to raw []int64 / []float64 argument columns. A kernel runs
// only when the column is homogeneous and NULL-free (see runTypedKernel), so
// the inner loops carry no Datum boxing, no NULL tests, and no per-step error
// returns. Each kernel replicates the exact arithmetic sequence of the boxed
// accumulators in expr/agg.go — same reseed condition, same grow-right-then-
// shrink-left order, same float operation order — so typed and boxed paths
// produce bit-identical results and the runtime fallback is invisible.

// kernelCount fills COUNT over a NULL-free column (or COUNT(*)): the frame
// size. Matches countAcc, which increments once per non-NULL Add.
func kernelCount(frame FrameSpec, n int, out []sqltypes.Datum) {
	for i := 0; i < n; i++ {
		lo, hi := frame.rowRange(i, n)
		if lo > hi {
			out[i] = sqltypes.NewInt(0)
			continue
		}
		out[i] = sqltypes.NewInt(int64(hi - lo + 1))
	}
}

// kernelSumInt slides SUM over an all-int column. Integer sums are exact, so
// only the empty-frame NULL and the reseed condition must mirror computeFrames.
func kernelSumInt(frame FrameSpec, vals []int64, out []sqltypes.Datum) {
	n := len(vals)
	var sum int64
	curLo, curHi := 0, -1
	for i := 0; i < n; i++ {
		lo, hi := frame.rowRange(i, n)
		if lo > hi {
			sum = 0
			curLo, curHi = lo, lo-1
			out[i] = sqltypes.NullDatum
			continue
		}
		if lo < curLo || lo > curHi+1 || hi < curHi {
			sum = 0
			curLo, curHi = lo, lo-1
		}
		for curHi < hi {
			curHi++
			sum += vals[curHi]
		}
		for curLo < lo {
			sum -= vals[curLo]
			curLo++
		}
		out[i] = sqltypes.NewInt(sum)
	}
}

// kernelSumFloat slides SUM over an all-float column. Float addition is not
// associative, so the += / -= order must match sumAcc exactly: grow right with
// Add, then shrink left with Remove, from a zero seed after every reseed.
func kernelSumFloat(frame FrameSpec, vals []float64, out []sqltypes.Datum) {
	n := len(vals)
	var sum float64
	curLo, curHi := 0, -1
	for i := 0; i < n; i++ {
		lo, hi := frame.rowRange(i, n)
		if lo > hi {
			sum = 0
			curLo, curHi = lo, lo-1
			out[i] = sqltypes.NullDatum
			continue
		}
		if lo < curLo || lo > curHi+1 || hi < curHi {
			sum = 0
			curLo, curHi = lo, lo-1
		}
		for curHi < hi {
			curHi++
			sum += vals[curHi]
		}
		for curLo < lo {
			sum -= vals[curLo]
			curLo++
		}
		out[i] = sqltypes.NewFloat(sum)
	}
}

// kernelAvg slides AVG over an all-int or all-float column. avgAcc accumulates
// float64(d.Float()) regardless of input type, so one generic body reproduces
// both: for float64 the conversion is the identity.
func kernelAvg[T int64 | float64](frame FrameSpec, vals []T, out []sqltypes.Datum) {
	n := len(vals)
	var sum float64
	var cnt int64
	curLo, curHi := 0, -1
	for i := 0; i < n; i++ {
		lo, hi := frame.rowRange(i, n)
		if lo > hi {
			sum, cnt = 0, 0
			curLo, curHi = lo, lo-1
			out[i] = sqltypes.NullDatum
			continue
		}
		if lo < curLo || lo > curHi+1 || hi < curHi {
			sum, cnt = 0, 0
			curLo, curHi = lo, lo-1
		}
		for curHi < hi {
			curHi++
			sum += float64(vals[curHi])
			cnt++
		}
		for curLo < lo {
			sum -= float64(vals[curLo])
			cnt--
			curLo++
		}
		out[i] = sqltypes.NewFloat(sum / float64(cnt))
	}
}

// kernelMinMax runs the monotonic deque over a raw slice. dq is a pooled
// position stack; head replaces the boxed version's dq = dq[1:] so the backing
// array stays reusable. mk boxes the winning value (NewInt or NewFloat).
// Returns (dq, false) if the frame ever moves backwards — the same pathological
// case the boxed deque hands to its quadratic fallback — letting the caller
// route the whole function through the boxed path.
func kernelMinMax[T int64 | float64](frame FrameSpec, vals []T, isMin bool, mk func(T) sqltypes.Datum, out []sqltypes.Datum, dq []int) ([]int, bool) {
	n := len(vals)
	dq = dq[:0]
	head := 0
	next := 0
	prevLo := 0
	for i := 0; i < n; i++ {
		lo, hi := frame.rowRange(i, n)
		if lo < prevLo {
			return dq, false
		}
		prevLo = lo
		for next <= hi {
			v := vals[next]
			for len(dq) > head {
				b := vals[dq[len(dq)-1]]
				// Pop ties too (<= / >=), matching the boxed deque: the later
				// of equal values survives. Indistinguishable in the output —
				// equal raw values box to equal datums — but kept identical
				// so the two paths walk the same states.
				if (isMin && v <= b) || (!isMin && v >= b) {
					dq = dq[:len(dq)-1]
					continue
				}
				break
			}
			dq = append(dq, next)
			next++
		}
		for head < len(dq) && dq[head] < lo {
			head++
		}
		if lo > hi || head == len(dq) {
			out[i] = sqltypes.NullDatum
		} else {
			out[i] = mk(vals[dq[head]])
		}
	}
	return dq, true
}
