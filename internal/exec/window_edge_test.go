package exec

import (
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// TestWindowOrderTiesAreStable: rows with equal ORDER BY keys keep their
// input order inside the frame computation, making results deterministic.
func TestWindowOrderTiesAreStable(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "k", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	// Three rows tie on k=1; input order is v = 10, 20, 30.
	rows := []sqltypes.Row{intRow(1, 10), intRow(1, 20), intRow(1, 30), intRow(2, 40)}
	kEx, _ := expr.Compile(mustExpr(t, "k"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	w := NewWindow(valuesOp(schema, rows...), nil, []SortKey{{Expr: kEx}},
		[]WindowFunc{{Name: "SUM", Arg: vEx, Frame: DefaultFrame(true), OutName: "cum"}})
	out, err := Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 30, 60, 100}
	for i, r := range out {
		if r[2].Int() != want[i] {
			t.Fatalf("cum[%d] = %v, want %d (ties must keep input order)", i, r[2], want[i])
		}
	}
}

// TestWindowDescendingOrder: frames follow the DESC ordering.
func TestWindowDescendingOrder(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "k", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	rows := []sqltypes.Row{intRow(1, 1), intRow(2, 2), intRow(3, 3)}
	kEx, _ := expr.Compile(mustExpr(t, "k"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	w := NewWindow(valuesOp(schema, rows...), nil, []SortKey{{Expr: kEx, Desc: true}},
		[]WindowFunc{{Name: "SUM", Arg: vEx, Frame: DefaultFrame(true), OutName: "cum"}})
	out, err := Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	// Descending order 3,2,1: cumulative sums 3, 5, 6 attach back to rows
	// k=3→3, k=2→5, k=1→6; output keeps input order (k=1,2,3).
	want := map[int64]int64{1: 6, 2: 5, 3: 3}
	for _, r := range out {
		if r[2].Int() != want[r[0].Int()] {
			t.Fatalf("k=%v cum=%v, want %d", r[0], r[2], want[r[0].Int()])
		}
	}
}

// TestWindowNullArguments: NULL inputs are skipped by the aggregate but the
// row still gets an output value; frames of only-NULLs yield NULL (COUNT 0).
func TestWindowNullArguments(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "k", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NullDatum},
		{sqltypes.NewInt(2), sqltypes.NewInt(5)},
		{sqltypes.NewInt(3), sqltypes.NullDatum},
	}
	kEx, _ := expr.Compile(mustExpr(t, "k"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	frame := FrameSpec{
		Start: FrameBound{Kind: BoundCurrentRow},
		End:   FrameBound{Kind: BoundCurrentRow},
	}
	w := NewWindow(valuesOp(schema, rows...), nil, []SortKey{{Expr: kEx}},
		[]WindowFunc{
			{Name: "SUM", Arg: vEx, Frame: frame, OutName: "s"},
			{Name: "COUNT", Arg: vEx, Frame: frame, OutName: "c"},
			{Name: "MIN", Arg: vEx, Frame: frame, OutName: "m"},
		})
	out, err := Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	// Row k=1: frame holds one NULL → SUM NULL, COUNT 0, MIN NULL.
	if !out[0][2].IsNull() || out[0][3].Int() != 0 || !out[0][4].IsNull() {
		t.Fatalf("all-NULL frame: %v", out[0])
	}
	if out[1][2].Int() != 5 || out[1][3].Int() != 1 || out[1][4].Int() != 5 {
		t.Fatalf("single-value frame: %v", out[1])
	}
}

// TestWindowMultiplePartitionsAndFunctions: two functions over two
// partitions, one algebraic, one semi-algebraic.
func TestWindowMultiplePartitionsAndFunctions(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "p", Type: sqltypes.Int},
		expr.ColInfo{Name: "k", Type: sqltypes.Int},
		expr.ColInfo{Name: "v", Type: sqltypes.Int},
	)
	rows := []sqltypes.Row{
		intRow(1, 1, 10), intRow(2, 1, 100), intRow(1, 2, 20), intRow(2, 2, 50),
	}
	pEx, _ := expr.Compile(mustExpr(t, "p"), schema)
	kEx, _ := expr.Compile(mustExpr(t, "k"), schema)
	vEx, _ := expr.Compile(mustExpr(t, "v"), schema)
	w := NewWindow(valuesOp(schema, rows...), []expr.Expr{pEx}, []SortKey{{Expr: kEx}},
		[]WindowFunc{
			{Name: "SUM", Arg: vEx, Frame: DefaultFrame(true), OutName: "cum"},
			{Name: "MAX", Arg: vEx, Frame: DefaultFrame(true), OutName: "mx"},
		})
	out, err := Collect(w)
	if err != nil {
		t.Fatal(err)
	}
	type want struct{ cum, mx int64 }
	expect := map[[2]int64]want{
		{1, 1}: {10, 10}, {1, 2}: {30, 20},
		{2, 1}: {100, 100}, {2, 2}: {150, 100},
	}
	for _, r := range out {
		key := [2]int64{r[0].Int(), r[1].Int()}
		w := expect[key]
		if r[3].Int() != w.cum || r[4].Int() != w.mx {
			t.Fatalf("row %v: cum=%v mx=%v, want %+v", key, r[3], r[4], w)
		}
	}
}

// TestWindowEmptyInput: zero rows in, zero rows out, no panics.
func TestWindowEmptyInput(t *testing.T) {
	schema := expr.NewSchema(expr.ColInfo{Name: "k", Type: sqltypes.Int})
	kEx, _ := expr.Compile(mustExpr(t, "k"), schema)
	w := NewWindow(valuesOp(schema), nil, []SortKey{{Expr: kEx}},
		[]WindowFunc{{Name: "SUM", Arg: kEx, Frame: DefaultFrame(true), OutName: "s"}})
	out, err := Collect(w)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
