// Command rfload is a concurrent load generator for rfserverd: it opens N
// client connections, fires the same query from each in a closed loop, and
// reports aggregate throughput and latency percentiles.
//
// Usage:
//
//	rfload -addr host:port [-clients N] [-duration 3s] [-sql QUERY]
//	       [-mixed RATIO -write-sql DML] [-setup script.sql] [-warmup 50]
//	       [-json] [-probe] [-mem-budget SIZE]
//
// -setup executes a SQL script through one connection before the load phase
// (statement by statement). -probe just pings once and exits 0/1, for
// scripts waiting on server start. -json prints a single machine-readable
// result line instead of the human summary. -mem-budget asserts the server
// runs under that executor memory budget (start rfserverd with the same
// flag) and appends the server's spill counters to the result, so a serve
// benchmark can confirm the out-of-core path actually ran end-to-end.
//
// -mixed R turns each client into a mixed reader/writer: every iteration is
// the -sql read with probability R, otherwise the -write-sql statement.
// Every "{i}" in -write-sql is replaced with a process-wide unique integer,
// so inserts can mint fresh keys ("INSERT INTO seq (pos, val) VALUES ({i},
// 1)"). Reads and writes are reported separately, write-write conflict
// aborts are counted rather than treated as errors, and the server's
// transaction counters are appended to the result — together they show
// readers scaling while writers commit (MVCC snapshot isolation).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/client"
	"rfview/internal/spill"
	"rfview/internal/sqlparser"
)

type runResult struct {
	Clients    int     `json:"clients"`
	DurationS  float64 `json:"duration_s"`
	Queries    uint64  `json:"queries"`
	Errors     uint64  `json:"errors"`
	QPS        float64 `json:"qps"`
	P50Us      int64   `json:"p50_us"`
	P95Us      int64   `json:"p95_us"`
	P99Us      int64   `json:"p99_us"`
	MeanUs     int64   `json:"mean_us"`
	ServerUsP  int64   `json:"server_p50_us"`
	RowsPerRes int     `json:"rows_per_result"`
	// Spill fields are filled only under -mem-budget: the server-reported
	// budget and cumulative spill counters after the run.
	MemBudget     int64 `json:"mem_budget_bytes,omitempty"`
	SpillRuns     int64 `json:"spill_runs,omitempty"`
	SpillRunBytes int64 `json:"spill_run_bytes,omitempty"`
	SpillOps      int64 `json:"spill_operators,omitempty"`
	// Buffer-pool counters, as reported by the server after the run (zero
	// PageSize = server runs without paged storage).
	BPPageSize    int     `json:"bufferpool_page_size,omitempty"`
	BPPagesCached int64   `json:"bufferpool_pages_cached,omitempty"`
	BPHits        int64   `json:"bufferpool_hits,omitempty"`
	BPMisses      int64   `json:"bufferpool_misses,omitempty"`
	BPEvictions   int64   `json:"bufferpool_evictions,omitempty"`
	BPWritebacks  int64   `json:"bufferpool_writebacks,omitempty"`
	BPHitRatio    float64 `json:"bufferpool_hit_ratio,omitempty"`
	// View-maintenance counters, as reported by the server after the run.
	MaintMode    string `json:"maintenance_mode,omitempty"`
	MaintDelta   int64  `json:"maintenance_delta_applied,omitempty"`
	MaintFull    int64  `json:"maintenance_full_refreshes,omitempty"`
	MaintPending int64  `json:"maintenance_pending,omitempty"`
	// Mixed-workload fields, filled only under -mixed: the configured read
	// ratio, the read/write split of the measured iterations, and write-write
	// conflict aborts (counted apart from Errors).
	MixedRatio float64 `json:"mixed_ratio,omitempty"`
	Reads      uint64  `json:"reads,omitempty"`
	Writes     uint64  `json:"writes,omitempty"`
	Conflicts  uint64  `json:"conflicts,omitempty"`
	ReadQPS    float64 `json:"read_qps,omitempty"`
	WriteQPS   float64 `json:"write_qps,omitempty"`
	// Transaction counters, as reported by the server after the run.
	TxnBegins    int64 `json:"txn_begins,omitempty"`
	TxnCommits   int64 `json:"txn_commits,omitempty"`
	TxnRollbacks int64 `json:"txn_rollbacks,omitempty"`
	TxnConflicts int64 `json:"txn_conflict_aborts,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	clients := flag.Int("clients", 1, "concurrent client connections")
	duration := flag.Duration("duration", 3*time.Second, "measurement window")
	sqlText := flag.String("sql", "", "query to issue in a closed loop")
	op := flag.String("op", "query", `operation per iteration: "query", or "ping" for a protocol-only ceiling run`)
	setup := flag.String("setup", "", "SQL script to execute once before the load phase")
	warmup := flag.Int("warmup", 50, "per-client warmup queries excluded from measurement")
	jsonOut := flag.Bool("json", false, "print one JSON result line instead of the human summary")
	probe := flag.Bool("probe", false, "ping once and exit 0 on success, 1 on failure")
	memBudget := flag.String("mem-budget", "", "expected server executor memory budget, e.g. 64MiB; reports the server's spill counters after the run")
	mixed := flag.Float64("mixed", 0, "mixed workload: probability in (0,1] that an iteration is the -sql read; the rest issue -write-sql")
	writeSQL := flag.String("write-sql", "", `DML statement for the write side of -mixed; every "{i}" becomes a unique integer`)
	flag.Parse()

	if *probe {
		c, err := client.DialTimeout(*addr, time.Second)
		if err == nil {
			err = c.Ping()
			c.Close()
		}
		if err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}

	// Ctrl-C aborts the setup script and the load loop cleanly.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *setup != "" {
		runSetup(ctx, *addr, *setup)
	}
	if *op != "ping" && *sqlText == "" {
		log.Fatal("rfload: -sql is required (or use -op ping / -probe / -setup alone)")
	}
	if *mixed < 0 || *mixed > 1 {
		log.Fatal("rfload: -mixed must be in (0,1]")
	}
	if *mixed > 0 && *writeSQL == "" {
		log.Fatal("rfload: -mixed requires -write-sql")
	}

	res := runLoad(ctx, *addr, *clients, *duration, *op, *sqlText, *warmup, *mixed, *writeSQL)
	if *memBudget != "" {
		attachSpillStats(*addr, *memBudget, &res)
	}
	attachMaintenanceStats(*addr, &res)
	attachBufferPoolStats(*addr, &res)
	if *mixed > 0 {
		attachTxnStats(*addr, &res)
	}
	if *jsonOut {
		b, err := json.Marshal(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("clients=%d duration=%.2fs queries=%d errors=%d qps=%.0f\n",
		res.Clients, res.DurationS, res.Queries, res.Errors, res.QPS)
	fmt.Printf("latency: mean=%dus p50=%dus p95=%dus p99=%dus (server p50=%dus), %d rows/result\n",
		res.MeanUs, res.P50Us, res.P95Us, res.P99Us, res.ServerUsP, res.RowsPerRes)
	if res.MemBudget > 0 || res.SpillRuns > 0 {
		fmt.Printf("spill: budget=%dB runs=%d bytes=%d operators=%d\n",
			res.MemBudget, res.SpillRuns, res.SpillRunBytes, res.SpillOps)
	}
	if res.MaintMode != "" {
		fmt.Printf("maintenance: mode=%s delta_applied=%d full_refreshes=%d pending=%d\n",
			res.MaintMode, res.MaintDelta, res.MaintFull, res.MaintPending)
	}
	if res.BPPageSize > 0 {
		fmt.Printf("bufferpool: page_size=%dB cached=%d hits=%d misses=%d hit_ratio=%.2f evictions=%d writebacks=%d\n",
			res.BPPageSize, res.BPPagesCached, res.BPHits, res.BPMisses, res.BPHitRatio, res.BPEvictions, res.BPWritebacks)
	}
	if res.MixedRatio > 0 {
		fmt.Printf("mixed: ratio=%.2f reads=%d (%.0f/s) writes=%d (%.0f/s) conflicts=%d\n",
			res.MixedRatio, res.Reads, res.ReadQPS, res.Writes, res.WriteQPS, res.Conflicts)
		fmt.Printf("txn: begins=%d commits=%d rollbacks=%d conflict_aborts=%d\n",
			res.TxnBegins, res.TxnCommits, res.TxnRollbacks, res.TxnConflicts)
	}
}

// attachBufferPoolStats folds the server's paged-storage buffer-pool
// counters into the result. Best-effort, like attachMaintenanceStats.
func attachBufferPoolStats(addr string, res *runResult) {
	c, err := client.Dial(addr)
	if err != nil {
		return
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return
	}
	res.BPPageSize = st.BufferPool.PageSize
	res.BPPagesCached = st.BufferPool.PagesCached
	res.BPHits = st.BufferPool.Hits
	res.BPMisses = st.BufferPool.Misses
	res.BPEvictions = st.BufferPool.Evictions
	res.BPWritebacks = st.BufferPool.Writebacks
	res.BPHitRatio = st.BufferPool.HitRatio
}

// attachTxnStats folds the server's transaction counters into the result.
// Best-effort, like attachMaintenanceStats.
func attachTxnStats(addr string, res *runResult) {
	c, err := client.Dial(addr)
	if err != nil {
		return
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return
	}
	res.TxnBegins = st.Txn.Begins
	res.TxnCommits = st.Txn.Commits
	res.TxnRollbacks = st.Txn.Rollbacks
	res.TxnConflicts = st.Txn.ConflictAborts
}

// attachMaintenanceStats folds the server's view-maintenance counters into
// the result. Best-effort: a server predating the stats block just leaves the
// fields empty.
func attachMaintenanceStats(addr string, res *runResult) {
	c, err := client.Dial(addr)
	if err != nil {
		return
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return
	}
	res.MaintMode = st.Maintenance.Mode
	res.MaintDelta = st.Maintenance.DeltaApplied
	res.MaintFull = st.Maintenance.FullRefreshes
	res.MaintPending = st.Maintenance.Pending
}

// attachSpillStats verifies the server runs under the expected memory budget
// and folds its spill counters into the result.
func attachSpillStats(addr, budget string, res *runResult) {
	want, err := spill.ParseBytes(budget)
	if err != nil {
		log.Fatalf("rfload: -mem-budget: %v", err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatalf("rfload: stats: %v", err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Fatalf("rfload: stats: %v", err)
	}
	if st.Spill.BudgetBytes != want {
		log.Printf("rfload: warning: server mem budget is %dB, expected %dB (start rfserverd with -mem-budget %s)",
			st.Spill.BudgetBytes, want, budget)
	}
	res.MemBudget = st.Spill.BudgetBytes
	res.SpillRuns = st.Spill.Runs
	res.SpillRunBytes = st.Spill.RunBytes
	res.SpillOps = st.Spill.Operators
}

// runSetup replays a SQL script statement by statement over one connection.
func runSetup(ctx context.Context, addr, path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	stmts, err := sqlparser.ParseAll(string(src))
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	defer c.Close()
	for _, s := range stmts {
		if _, err := c.ExecContext(ctx, s.String()); err != nil {
			log.Fatalf("setup: %q: %v", s.String(), err)
		}
	}
}

func runLoad(ctx context.Context, addr string, clients int, duration time.Duration, op, sql string, warmup int, mixed float64, writeSQL string) runResult {
	type worker struct {
		latencies []time.Duration
		serverUs  []int64
		queries   uint64
		errors    uint64
		rows      int
		reads     uint64
		writes    uint64
		conflicts uint64
	}
	workers := make([]worker, clients)
	conns := make([]*client.Client, clients)
	for i := range conns {
		c, err := client.Dial(addr)
		if err != nil {
			log.Fatalf("dial: %v", err)
		}
		defer c.Close()
		conns[i] = c
	}

	// writeSeq mints process-wide unique integers for "{i}" in -write-sql,
	// so concurrent inserts never collide on a unique key by construction.
	var writeSeq atomic.Int64
	expand := func(tmpl string) string {
		if !strings.Contains(tmpl, "{i}") {
			return tmpl
		}
		return strings.ReplaceAll(tmpl, "{i}", strconv.FormatInt(writeSeq.Add(1), 10))
	}

	// one round-trip of the configured operation on conn i; isWrite picks the
	// write side of a mixed workload.
	issue := func(i int, isWrite bool) (*client.Result, error) {
		if op == "ping" {
			return &client.Result{}, conns[i].Ping()
		}
		if isWrite {
			return conns[i].ExecContext(ctx, expand(writeSQL))
		}
		return conns[i].QueryContext(ctx, sql)
	}

	// Warmup outside the measurement window; it also fills the server's
	// plan cache so the measured phase is the steady state. Mixed runs warm
	// up read-only: warmup writes would mutate the table before measurement.
	for i := 0; i < clients; i++ {
		for j := 0; j < warmup; j++ {
			if _, err := issue(i, false); err != nil {
				log.Fatalf("warmup: %v", err)
			}
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &workers[i]
			rng := rand.New(rand.NewSource(int64(i)*2654435761 + 1))
			for !stop.Load() {
				isWrite := mixed > 0 && rng.Float64() >= mixed
				t0 := time.Now()
				res, err := issue(i, isWrite)
				if err != nil {
					if rferrors.CodeOf(err) == rferrors.CodeConflict {
						w.conflicts++
					} else {
						w.errors++
					}
					continue
				}
				w.latencies = append(w.latencies, time.Since(t0))
				w.serverUs = append(w.serverUs, res.ElapsedUs)
				w.queries++
				if isWrite {
					w.writes++
				} else {
					w.reads++
					w.rows = len(res.Rows)
				}
			}
		}(i)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total, errs, reads, writes, conflicts uint64
	var all []time.Duration
	var allServer []int64
	rows := 0
	for i := range workers {
		total += workers[i].queries
		errs += workers[i].errors
		reads += workers[i].reads
		writes += workers[i].writes
		conflicts += workers[i].conflicts
		all = append(all, workers[i].latencies...)
		allServer = append(allServer, workers[i].serverUs...)
		if workers[i].rows > 0 {
			rows = workers[i].rows
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	sort.Slice(allServer, func(a, b int) bool { return allServer[a] < allServer[b] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(float64(len(all)-1)*p)].Microseconds()
	}
	var mean int64
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		mean = (sum / time.Duration(len(all))).Microseconds()
	}
	var serverP50 int64
	if len(allServer) > 0 {
		serverP50 = allServer[len(allServer)/2]
	}
	res := runResult{
		Clients:    clients,
		DurationS:  elapsed.Seconds(),
		Queries:    total,
		Errors:     errs,
		QPS:        float64(total) / elapsed.Seconds(),
		P50Us:      pct(0.50),
		P95Us:      pct(0.95),
		P99Us:      pct(0.99),
		MeanUs:     mean,
		ServerUsP:  serverP50,
		RowsPerRes: rows,
	}
	if mixed > 0 {
		res.MixedRatio = mixed
		res.Reads = reads
		res.Writes = writes
		res.Conflicts = conflicts
		res.ReadQPS = float64(reads) / elapsed.Seconds()
		res.WriteQPS = float64(writes) / elapsed.Seconds()
	}
	return res
}
