package rewrite

import (
	"strings"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

func parseSelect(t *testing.T, sql string) *sqlparser.Select {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel, ok := stmt.(*sqlparser.Select)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	return sel
}

func TestMatchWindowQueryCanonical(t *testing.T) {
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	wq, err := MatchWindowQuery(sel)
	if err != nil {
		t.Fatal(err)
	}
	if wq.Table != "seq" || wq.PosCol != "pos" || wq.ValCol != "val" || wq.Agg != "SUM" {
		t.Fatalf("wq = %+v", wq)
	}
	if wq.Shape.Cumulative || wq.Shape.Preceding != 2 || wq.Shape.Following != 1 {
		t.Fatalf("shape = %v", wq.Shape)
	}
	if wq.OutAlias != "w" || wq.WindowItemAt != 1 {
		t.Fatalf("wq = %+v", wq)
	}
}

func TestMatchWindowQueryShapes(t *testing.T) {
	cumulative := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) FROM seq`)
	wq, err := MatchWindowQuery(cumulative)
	if err != nil || !wq.Shape.Cumulative {
		t.Fatalf("cumulative misdetected: %v %v", wq, err)
	}
	defaulted := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos) FROM seq`)
	wq, err = MatchWindowQuery(defaulted)
	if err != nil || !wq.Shape.Cumulative {
		t.Fatalf("default frame must read cumulative: %v %v", wq, err)
	}
	oneSided := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN CURRENT ROW AND 6 FOLLOWING) FROM seq`)
	wq, err = MatchWindowQuery(oneSided)
	if err != nil || wq.Shape.Preceding != 0 || wq.Shape.Following != 6 {
		t.Fatalf("prospective window misdetected: %+v %v", wq, err)
	}
	star := parseSelect(t, `SELECT pos, COUNT(*) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq`)
	wq, err = MatchWindowQuery(star)
	if err != nil || wq.Agg != "COUNT" || wq.ValCol != "" {
		t.Fatalf("COUNT(*) misdetected: %+v %v", wq, err)
	}
	partitioned := parseSelect(t, `SELECT pos, SUM(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq`)
	wq, err = MatchWindowQuery(partitioned)
	if err != nil || len(wq.PartitionBy) != 1 || wq.PartitionBy[0] != "grp" {
		t.Fatalf("partition misdetected: %+v %v", wq, err)
	}
}

func TestMatchWindowQueryRejections(t *testing.T) {
	bad := []string{
		`SELECT pos FROM seq`, // no window
		`SELECT pos, val + 1 AS x, SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING) FROM seq`, // computed item
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING) FROM seq WHERE pos > 1`, // WHERE
		`SELECT pos, SUM(val) OVER (ORDER BY pos DESC ROWS 1 PRECEDING) FROM seq`,          // DESC
		`SELECT pos, SUM(val) OVER (ORDER BY pos, val ROWS 1 PRECEDING) FROM seq`,          // two order cols
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING) FROM (SELECT pos, val FROM seq) d`,
		`SELECT a.pos, SUM(a.val) OVER (ORDER BY a.pos ROWS 1 PRECEDING) FROM seq a, seq b`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING), AVG(val) OVER (ORDER BY pos ROWS 1 PRECEDING) FROM seq`,
	}
	for _, q := range bad {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		sel, ok := stmt.(*sqlparser.Select)
		if !ok {
			continue
		}
		if _, err := MatchWindowQuery(sel); err == nil {
			t.Errorf("MatchWindowQuery(%q) should reject", q)
		}
	}
}

// TestFig2Pattern: the self-join rewrite reproduces the relational mapping
// of Fig. 2 — self join, IN-list on the anchor position, grouped SUM.
func TestFig2Pattern(t *testing.T) {
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM seq`)
	out, err := SelfJoin(sel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := `SELECT s1.pos AS pos, SUM(s2.val) FROM seq s1, seq s2 WHERE s1.pos IN ((s2.pos - 1), s2.pos, (s2.pos + 1)) GROUP BY s1.pos`
	if got != want {
		t.Fatalf("Fig. 2 pattern mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestSelfJoinCumulative(t *testing.T) {
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS c FROM seq`)
	out, err := SelfJoin(sel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "s2.pos <= s1.pos") {
		t.Fatalf("cumulative self-join must use a range predicate: %s", got)
	}
	if !strings.Contains(got, "GROUP BY s1.pos") {
		t.Fatalf("missing grouping: %s", got)
	}
}

func TestSelfJoinPartitioned(t *testing.T) {
	sel := parseSelect(t, `SELECT pos, grp, SUM(val) OVER (PARTITION BY grp ORDER BY pos
	  ROWS BETWEEN 1 PRECEDING AND 0 FOLLOWING) AS w FROM seq`)
	out, err := SelfJoin(sel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "s1.grp = s2.grp") {
		t.Fatalf("partition columns must join: %s", got)
	}
	if !strings.Contains(got, "GROUP BY s1.pos, s1.grp") {
		t.Fatalf("partition columns must group: %s", got)
	}
}

func newViewCatalog(t *testing.T, win catalog.WindowSpec, agg string) (*catalog.Catalog, *catalog.MatView) {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("seq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}}); err != nil {
		t.Fatal(err)
	}
	backing, err := cat.CreateTable("__mv_matseq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
	if err != nil {
		t.Fatal(err)
	}
	mv := &catalog.MatView{
		Name: "matseq", Kind: catalog.SequenceView, Table: backing,
		BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: agg,
		Window: win,
	}
	mv.BaseRows.Store(100)
	if err := cat.RegisterMatView(mv); err != nil {
		t.Fatal(err)
	}
	return cat, mv
}

// TestFig10Pattern: MaxOA disjunctive form carries the Fig. 10 signature —
// the view self-joined under an OR of MOD-residue branches, a CASE negation
// inside a grouped SUM, and a LEFT OUTER JOIN with COALESCE re-attaching the
// compensation to the original sequence values.
func TestFig10Pattern(t *testing.T) {
	cat, _ := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyMaxOA, FormDisjunctive)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("no derivation")
	}
	if d.Strategy != StrategyMaxOA || d.DeltaL != 1 || d.DeltaH != 0 || d.Wx != 4 {
		t.Fatalf("derivation = %+v", d)
	}
	got := d.Stmt.String()
	for _, sig := range []string{
		"LEFT OUTER JOIN",
		"s.val + COALESCE(d.val, 0)",
		"CASE WHEN MOD(",
		"ELSE (-1 * s2.val)",
		"GROUP BY s1.pos",
		" OR ",
		"FROM matseq s1, matseq s2",
		"s.pos BETWEEN 1 AND 100",
	} {
		if !strings.Contains(got, sig) {
			t.Fatalf("Fig. 10 signature %q missing in:\n%s", sig, got)
		}
	}
	// Single-side derivation: exactly one OR (two branches).
	if strings.Count(got, " OR ") != 1 {
		t.Fatalf("expected two branches: %s", got)
	}
}

// TestFig13Pattern: MinOA disjunctive form — no s.val term of its own, the
// positive chain anchored at pos+Δh, and the left outer join keeping
// positions without compensation terms.
func TestFig13Pattern(t *testing.T) {
	cat, _ := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 2 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyMinOA, FormDisjunctive)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("no derivation")
	}
	if d.Strategy != StrategyMinOA || d.DeltaL != 1 || d.DeltaH != 1 {
		t.Fatalf("derivation = %+v", d)
	}
	got := d.Stmt.String()
	if strings.Contains(got, "s.val +") {
		t.Fatalf("MinOA must not add the outer sequence value:\n%s", got)
	}
	for _, sig := range []string{
		"LEFT OUTER JOIN",
		"COALESCE(d.val, 0)",
		"CASE WHEN MOD(",
		"GROUP BY s1.pos",
		" OR ",
	} {
		if !strings.Contains(got, sig) {
			t.Fatalf("Fig. 13 signature %q missing in:\n%s", sig, got)
		}
	}
}

// TestUnionForm: the UNION-of-simple-predicates variant splits each branch
// into its own select, combined with UNION ALL.
func TestUnionForm(t *testing.T) {
	cat, _ := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyMaxOA, FormUnion)
	if err != nil || d == nil {
		t.Fatalf("derive: %v %v", d, err)
	}
	got := d.Stmt.String()
	if !strings.Contains(got, "UNION ALL") {
		t.Fatalf("union form must use UNION ALL:\n%s", got)
	}
	if strings.Contains(got, " OR ") {
		t.Fatalf("union form must not contain disjunctions:\n%s", got)
	}
	if !strings.Contains(got, "(-1 * s2.val)") {
		t.Fatalf("negative branches must negate values:\n%s", got)
	}
}

// TestFig4Pattern: raw-data reconstruction from a cumulative view.
func TestFig4Pattern(t *testing.T) {
	cat, mv := newViewCatalog(t, catalog.WindowSpec{Cumulative: true}, "SUM")
	out, err := RawFromCumulative(mv)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, sig := range []string{
		"CASE WHEN s1.pos = s2.pos THEN s2.val ELSE (-1 * s2.val) END",
		"s1.pos IN (s2.pos, (s2.pos + 1))",
		"GROUP BY s1.pos",
		"FROM matseq s1, matseq s2",
	} {
		if !strings.Contains(got, sig) {
			t.Fatalf("Fig. 4 signature %q missing in:\n%s", sig, got)
		}
	}
	_ = cat
	// Non-cumulative views are rejected.
	_, mv2 := func() (*catalog.Catalog, *catalog.MatView) {
		c := catalog.New()
		b, _ := c.CreateTable("__mv_x", []catalog.Column{{Name: "pos", Type: sqltypes.Int}})
		v := &catalog.MatView{Name: "x", Kind: catalog.SequenceView, Table: b,
			Window: catalog.WindowSpec{Preceding: 1, Following: 1}}
		c.RegisterMatView(v)
		return c, v
	}()
	if _, err := RawFromCumulative(mv2); err == nil {
		t.Fatal("sliding view must be rejected")
	}
}

// TestExactMatch: an identically-windowed view answers without derivation
// machinery.
func TestExactMatch(t *testing.T) {
	cat, _ := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyAuto, FormDisjunctive)
	if err != nil || d == nil {
		t.Fatalf("derive: %v %v", d, err)
	}
	got := d.Stmt.String()
	if strings.Contains(got, "JOIN") || strings.Contains(got, "GROUP") {
		t.Fatalf("exact match must be a plain scan:\n%s", got)
	}
}

// TestDeriveNoMatch: queries over other tables/columns/aggregates find no
// view.
func TestDeriveNoMatch(t *testing.T) {
	cat, _ := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	for _, q := range []string{
		`SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM seq`,
		`SELECT pos, SUM(other) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY other ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM elsewhere`,
	} {
		sel := parseSelect(t, q)
		d, err := Derive(cat, sel, StrategyAuto, FormDisjunctive)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if d != nil {
			t.Fatalf("%s: unexpected derivation against %s", q, d.View.Name)
		}
	}
}

// TestStrategyResolution pins the precondition matrix.
func TestStrategyResolution(t *testing.T) {
	cases := []struct {
		req        Strategy
		dl, dh, wx int
		want       Strategy
	}{
		{StrategyMaxOA, 1, 0, 4, StrategyMaxOA},
		{StrategyMaxOA, -1, 0, 4, StrategyAuto}, // narrowing: MaxOA refuses
		{StrategyMaxOA, 4, 0, 4, StrategyAuto},  // Δl ≥ W_x: residues collide
		{StrategyMinOA, -1, 0, 4, StrategyMinOA},
		{StrategyMinOA, 2, 2, 4, StrategyAuto}, // Δl+Δh ≡ 0 (mod W_x)
		{StrategyAuto, 1, 0, 4, StrategyMinOA},
		{StrategyAuto, 2, 2, 4, StrategyMaxOA}, // MinOA corner → MaxOA
		{StrategyAuto, 4, 4, 4, StrategyAuto},  // neither applies
	}
	for _, c := range cases {
		if got := resolveStrategy(c.req, c.dl, c.dh, c.wx); got != c.want {
			t.Errorf("resolveStrategy(%v, %d, %d, %d) = %v, want %v", c.req, c.dl, c.dh, c.wx, got, c.want)
		}
	}
}

// TestPickView prefers wider materialized windows.
func TestPickView(t *testing.T) {
	cat := catalog.New()
	cat.CreateTable("seq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
	add := func(name string, w catalog.WindowSpec) {
		b, _ := cat.CreateTable("__mv_"+name, []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
		mv := &catalog.MatView{Name: name, Kind: catalog.SequenceView, Table: b,
			BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: "SUM", Window: w}
		mv.BaseRows.Store(10)
		cat.RegisterMatView(mv)
	}
	add("narrow", catalog.WindowSpec{Preceding: 1, Following: 0})
	add("wide", catalog.WindowSpec{Preceding: 3, Following: 2})
	sel := parseSelect(t, `SELECT pos, SUM(val) OVER (ORDER BY pos
	  ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS w FROM seq`)
	d, err := Derive(cat, sel, StrategyAuto, FormDisjunctive)
	if err != nil || d == nil {
		t.Fatalf("derive: %v %v", d, err)
	}
	if d.View.Name != "wide" {
		t.Fatalf("picked %s, want wide", d.View.Name)
	}
}

// TestResidueOffset keeps every MOD operand non-negative.
func TestResidueOffset(t *testing.T) {
	_, mv := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 5}, "SUM")
	off := residueOffset(mv, []int{-7, 3}, 8)
	if off%8 != 0 {
		t.Fatalf("offset %d must be a multiple of the window size", off)
	}
	// Smallest possible operand: pos = 1-h_x = -4, shift = -7 → -11 + off > 0.
	if -11+off <= 0 {
		t.Fatalf("offset %d too small", off)
	}
}

// TestRawFromSlidingPattern — the §3.2 explicit reconstruction as SQL.
func TestRawFromSlidingPattern(t *testing.T) {
	_, mv := newViewCatalog(t, catalog.WindowSpec{Preceding: 2, Following: 1}, "SUM")
	out, err := RawFromSliding(mv)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, sig := range []string{"CASE WHEN MOD(", "GROUP BY s1.pos", " OR ", "BETWEEN 1 AND 100"} {
		if !strings.Contains(got, sig) {
			t.Fatalf("signature %q missing in:\n%s", sig, got)
		}
	}
	// Cumulative and MIN views are rejected.
	_, cum := newViewCatalog2(t, "c2", catalog.WindowSpec{Cumulative: true}, "SUM")
	if _, err := RawFromSliding(cum); err == nil {
		t.Fatal("cumulative view must be rejected")
	}
	_, mn := newViewCatalog2(t, "c3", catalog.WindowSpec{Preceding: 1, Following: 1}, "MIN")
	if _, err := RawFromSliding(mn); err == nil {
		t.Fatal("MIN view must be rejected")
	}
}

// newViewCatalog2 is newViewCatalog with a unique backing-table name so one
// test can build several catalogs.
func newViewCatalog2(t *testing.T, tag string, win catalog.WindowSpec, agg string) (*catalog.Catalog, *catalog.MatView) {
	t.Helper()
	cat := catalog.New()
	cat.CreateTable("seq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
	backing, err := cat.CreateTable("__mv_"+tag, []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
	if err != nil {
		t.Fatal(err)
	}
	mv := &catalog.MatView{
		Name: tag, Kind: catalog.SequenceView, Table: backing,
		BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: agg,
		Window: win,
	}
	mv.BaseRows.Store(50)
	if err := cat.RegisterMatView(mv); err != nil {
		t.Fatal(err)
	}
	return cat, mv
}

// TestAvgComposition — §2.1's AVG = SUM/COUNT at the rewrite level.
func TestAvgComposition(t *testing.T) {
	cat := catalog.New()
	cat.CreateTable("seq", []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
	mk := func(name, agg string) {
		b, _ := cat.CreateTable("__mv_"+name, []catalog.Column{{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Int}})
		mv := &catalog.MatView{
			Name: name, Kind: catalog.SequenceView, Table: b,
			BaseTable: "seq", PosColumn: "pos", ValColumn: "val", Agg: agg,
			Window: catalog.WindowSpec{Preceding: 2, Following: 1},
		}
		mv.BaseRows.Store(40)
		cat.RegisterMatView(mv)
	}
	mk("vsum", "SUM")
	sel := parseSelect(t, `SELECT pos, AVG(val) OVER (ORDER BY pos
	  ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`)
	// SUM view alone is not enough: COUNT is missing.
	d, err := Derive(cat, sel, StrategyAuto, FormDisjunctive)
	if err != nil || d != nil {
		t.Fatalf("AVG without COUNT view: %v %v", d, err)
	}
	mk("vcnt", "COUNT")
	d, err = Derive(cat, sel, StrategyAuto, FormDisjunctive)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("AVG composition should fire with SUM+COUNT views")
	}
	got := d.Stmt.String()
	for _, sig := range []string{"ds.w", "dc.w", "JOIN", "(1 * ds.w)", "/ dc.w"} {
		if !strings.Contains(got, sig) {
			t.Fatalf("AVG composition missing %q:\n%s", sig, got)
		}
	}
}
