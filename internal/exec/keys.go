package exec

import (
	"bytes"
	"math"
	"slices"
	"sync"

	"rfview/internal/sqltypes"
)

// This file is the shared ordering fast path of the executor: both exec.Sort
// and Window.computePartition sort row sets by normalizing the ORDER BY keys
// into memcomparable byte strings once per row and comparing with
// bytes.Compare, instead of paying an interface-dispatched Expr.Eval plus an
// error-checked sqltypes.Compare per key on every one of the N·log N
// comparisons. Columns the encoding cannot represent faithfully (Int/Float
// mixes, NaN floats) fall back to a Compare-based sort whose key types were
// already validated, so no error can surface mid-sort — fixing the old
// comparator bug where a failed Compare kept sorting on garbage ordering and
// was only checked after sort.SliceStable returned.

// sortScratch holds the reusable buffers of one normalization run. Buffers
// are pooled (see scratchPool) because partition-parallel windows run many
// computePartition calls concurrently and each used to allocate its own key
// matrix and permutation.
type sortScratch struct {
	datums []sqltypes.Datum // flat n×k key matrix, row-major
	types  []sqltypes.Type  // first non-NULL type per key column
	enc    [][]byte         // per-row normalized keys, slices into buf
	buf    []byte           // arena backing enc
	offs   []int            // per-row start offsets into buf
	bounds []int32          // per-row per-key offsets into buf ((k+1) each), meta runs only
	perm   []int
	tmp    []int
}

// scratchPool recycles per-sort (and per-partition, see partScratch) buffers
// across operator executions and worker goroutines.
var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

func getSortScratch() *sortScratch  { return sortScratchPool.Get().(*sortScratch) }
func putSortScratch(s *sortScratch) { sortScratchPool.Put(s) }

// grow resizes a slice to length n, reusing capacity when it suffices.
// Retained elements are stale scratch; callers overwrite before reading.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// sortRowsByKeys stably sorts idx — indices into rows — by the given keys,
// in place. With vectorize set it normalizes every key into an
// order-preserving byte string and sorts by bytes.Compare; when a key column
// defeats the encoding (an Int/Float mix, a NaN) or vectorize is off, it
// sorts by sqltypes.Compare over a pre-evaluated key matrix. Either way
// every key is evaluated and type-checked before the sort runs: incomparable
// key types (e.g. INTEGER vs VARCHAR produced by a CASE) return the type
// error here, never from inside the sort comparator. Returns whether the
// normalized path was taken.
//
// Both paths sort an identity permutation with the row's position as the
// final tie-break, which reproduces a stable sort exactly while letting the
// sort itself run unstable (pattern-defeating quicksort instead of the
// in-place merge a stable sort needs).
func sortRowsByKeys(rows []sqltypes.Row, idx []int, keys []SortKey, sc *sortScratch, vectorize bool) (bool, error) {
	return sortRowsByKeysMeta(rows, idx, keys, sc, vectorize, nil)
}

// sortRowsByKeysMeta is sortRowsByKeys with an optional ClassOrderMeta to
// fill: when meta is non-nil and the normalized path completes, the sorted
// stream's adjacency table (tie depths and per-key runtime types) is
// recorded for the Window operators of a shared class. Every other path
// leaves meta untouched (the caller resets it beforehand).
func sortRowsByKeysMeta(rows []sqltypes.Row, idx []int, keys []SortKey, sc *sortScratch, vectorize bool, meta *ClassOrderMeta) (bool, error) {
	n, k := len(idx), len(keys)
	if n < 2 || k == 0 {
		return vectorize, nil
	}
	if vectorize {
		done, err := sortRowsEncoded(rows, idx, keys, sc, meta)
		if err != nil || done {
			return done, err
		}
		// A key defeated the encoding; re-evaluate onto the matrix below.
	}
	// Comparator path. Evaluate every key for every row into one flat
	// matrix, then validate each key column: a single non-NULL type (or a
	// numeric mix) sorts, anything else is a type error surfaced before any
	// ordering work.
	if cap(sc.datums) < n*k {
		sc.datums = make([]sqltypes.Datum, n*k)
	} else {
		sc.datums = sc.datums[:n*k]
	}
	for i, ri := range idx {
		row := rows[ri]
		base := i * k
		for ki := range keys {
			v, err := keys[ki].Expr.Eval(row)
			if err != nil {
				return false, err
			}
			sc.datums[base+ki] = v
		}
	}
	for ki := 0; ki < k; ki++ {
		first := sqltypes.Null
		for i := 0; i < n; i++ {
			t := sc.datums[i*k+ki].Typ()
			if t == sqltypes.Null || t == first {
				continue
			}
			if first == sqltypes.Null {
				first = t
				continue
			}
			if !sqltypes.Comparable(first, t) {
				return false, &sqltypes.ErrTypeMismatch{Op: "compare", Left: first, Right: t}
			}
		}
	}

	sc.perm = grow(sc.perm, n)
	for i := range sc.perm {
		sc.perm[i] = i
	}
	datums, perm := sc.datums, sc.perm
	slices.SortFunc(perm, func(a, b int) int {
		ba, bb := a*k, b*k
		for ki := range keys {
			if cmp := compareKeyDatums(datums[ba+ki], datums[bb+ki], keys[ki]); cmp != 0 {
				return cmp
			}
		}
		return a - b // identity start: position tie-break == stability
	})
	applySortPerm(sc, idx)
	return false, nil
}

// sortRowsEncoded is the normalized fast path: it validates and encodes the
// keys row by row — never materializing the n×k datum matrix the comparator
// path needs — and sorts the packed memcomparable keys with bytes.Compare.
// done=false (with a nil error) means a key defeated the order-preserving
// encoding — a NaN float (not a total order under Compare) or an Int/Float
// mix (exact int pairs vs float cross pairs) — and the caller must take the
// comparator path.
func sortRowsEncoded(rows []sqltypes.Row, idx []int, keys []SortKey, sc *sortScratch, meta *ClassOrderMeta) (bool, error) {
	n, k := len(idx), len(keys)
	if cap(sc.types) < k {
		sc.types = make([]sqltypes.Type, k)
	} else {
		sc.types = sc.types[:k]
	}
	for ki := range sc.types {
		sc.types[ki] = sqltypes.Null
	}
	if cap(sc.datums) < k {
		sc.datums = make([]sqltypes.Datum, k)
	}
	rowKeys := sc.datums[:k]
	var bounds []int32
	if meta != nil {
		sc.bounds = grow(sc.bounds, n*(k+1))
		bounds = sc.bounds
	}
	sc.buf = sc.buf[:0]
	sc.offs = grow(sc.offs, n+1)
	for i, ri := range idx {
		row := rows[ri]
		for ki := range keys {
			v, err := keys[ki].Expr.Eval(row)
			if err != nil {
				return false, err
			}
			if t := v.Typ(); t != sqltypes.Null {
				if t == sqltypes.Float && math.IsNaN(v.Float()) {
					return false, nil
				}
				switch first := sc.types[ki]; {
				case first == sqltypes.Null:
					sc.types[ki] = t
				case t == first:
				case !sqltypes.Comparable(first, t):
					return false, &sqltypes.ErrTypeMismatch{Op: "compare", Left: first, Right: t}
				default:
					return false, nil
				}
			}
			rowKeys[ki] = v
		}
		sc.offs[i] = len(sc.buf)
		for ki := range keys {
			if bounds != nil {
				bounds[i*(k+1)+ki] = int32(len(sc.buf))
			}
			sc.buf = sqltypes.EncodeKeyNulls(sc.buf, rowKeys[ki], keys[ki].Desc, keys[ki].nullsLast())
		}
		if bounds != nil {
			bounds[i*(k+1)+k] = int32(len(sc.buf))
		}
	}
	sc.offs[n] = len(sc.buf)
	if cap(sc.enc) < n {
		sc.enc = make([][]byte, n)
	} else {
		sc.enc = sc.enc[:n]
	}
	for i := 0; i < n; i++ {
		sc.enc[i] = sc.buf[sc.offs[i]:sc.offs[i+1]]
	}
	sc.perm = grow(sc.perm, n)
	for i := range sc.perm {
		sc.perm[i] = i
	}
	enc := sc.enc
	slices.SortFunc(sc.perm, func(a, b int) int {
		if c := bytes.Compare(enc[a], enc[b]); c != 0 {
			return c
		}
		return a - b // identity start: position tie-break == stability
	})
	if meta != nil {
		fillClassOrderMeta(meta, sc, n, k)
	}
	applySortPerm(sc, idx)
	return true, nil
}

// fillClassOrderMeta records the sorted stream's adjacency table while the
// normalized sort's scratch is still alive: perm holds the sorted order,
// bounds/buf the per-key encodings indexed by pre-sort position. Key-encoded
// byte equality is exactly Compare equality for everything the normalized
// path accepts, so the table's tie depths are the ones the comparator path
// would have produced.
func fillClassOrderMeta(m *ClassOrderMeta, sc *sortScratch, n, k int) {
	m.tieDepth = grow(m.tieDepth, n)
	m.keyTypes = grow(m.keyTypes, k)
	copy(m.keyTypes, sc.types[:k])
	buf, bounds, perm := sc.buf, sc.bounds, sc.perm
	m.tieDepth[0] = 0
	for i := 1; i < n; i++ {
		a, b := perm[i-1], perm[i]
		ba, bb := a*(k+1), b*(k+1)
		depth := int32(0)
		for ki := 0; ki < k; ki++ {
			sa := buf[bounds[ba+ki]:bounds[ba+ki+1]]
			sb := buf[bounds[bb+ki]:bounds[bb+ki+1]]
			if !bytes.Equal(sa, sb) {
				break
			}
			depth++
		}
		m.tieDepth[i] = depth
	}
	m.valid = true
}

// applySortPerm rewrites idx through the sorted permutation.
func applySortPerm(sc *sortScratch, idx []int) {
	sc.tmp = grow(sc.tmp, len(idx))
	for i, pi := range sc.perm {
		sc.tmp[i] = idx[pi]
	}
	copy(idx, sc.tmp[:len(idx)])
}

// compareKeyDatums orders two pre-validated key datums under one SortKey:
// NULL placement is absolute (nullsLast puts NULLs after every non-NULL value
// regardless of direction, matching EncodeKeyNulls), non-NULL pairs compare
// through sqltypes.Compare with DESC negation. Callers guarantee the pair is
// comparable, so Compare cannot fail.
func compareKeyDatums(a, b sqltypes.Datum, k SortKey) int {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			if k.nullsLast() {
				return 1
			}
			return -1
		default:
			if k.nullsLast() {
				return -1
			}
			return 1
		}
	}
	cmp, _ := sqltypes.Compare(a, b)
	if k.Desc {
		return -cmp
	}
	return cmp
}
