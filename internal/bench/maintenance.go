package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"rfview/internal/engine"
)

// The maintenance experiment quantifies §2.3 at the SQL level: how much an
// incremental view update (one UPDATE statement against the base table,
// folded into the view through the maintenance rules) costs compared to a
// full REFRESH MATERIALIZED VIEW.

// MaintRow is one measured row of the maintenance experiment.
type MaintRow struct {
	N           int
	Incremental time.Duration // median over single-row UPDATEs, §2.3 band patch
	FullRefresh time.Duration // median over REFRESH MATERIALIZED VIEW trials

	// IncrementalOps and RefreshTrials are the raw per-operation timings the
	// medians are drawn from.
	IncrementalOps []time.Duration
	RefreshTrials  []time.Duration
}

// MaintenanceSizes are the default sequence cardinalities.
var MaintenanceSizes = []int{1000, 5000, 20000}

// maintIncrementalOps is how many single-row UPDATEs each size times.
const maintIncrementalOps = 50

// maintRefreshTrials is how many REFRESH executions each size times.
const maintRefreshTrials = 5

func medianDuration(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// RunMaintenance measures incremental maintenance vs. full refresh. Each
// single-row UPDATE is timed individually and each REFRESH trial separately;
// the reported numbers are medians, which shrug off scheduler hiccups that
// would skew a batch average.
func RunMaintenance(sizes []int) ([]MaintRow, error) {
	out := make([]MaintRow, 0, len(sizes))
	for _, n := range sizes {
		e := engine.New(engine.DefaultOptions())
		if err := LoadSequenceTable(e, n, 23); err != nil {
			return nil, err
		}
		if _, err := e.Exec(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`); err != nil {
			return nil, err
		}
		if _, err := e.Exec(Table2ViewDDL); err != nil {
			return nil, err
		}
		row := MaintRow{N: n}

		for i := 0; i < maintIncrementalOps; i++ {
			pos := 1 + (i*7919)%n
			sql := fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i%100, pos)
			start := time.Now()
			if _, err := e.Exec(sql); err != nil {
				return nil, err
			}
			row.IncrementalOps = append(row.IncrementalOps, time.Since(start))
		}
		row.Incremental = medianDuration(row.IncrementalOps)
		if e.Views.Stale("matseq") {
			return nil, fmt.Errorf("maintenance: view went stale at n=%d", n)
		}

		for t := 0; t < maintRefreshTrials; t++ {
			start := time.Now()
			if _, err := e.Exec(`REFRESH MATERIALIZED VIEW matseq`); err != nil {
				return nil, err
			}
			row.RefreshTrials = append(row.RefreshTrials, time.Since(start))
		}
		row.FullRefresh = medianDuration(row.RefreshTrials)
		out = append(out, row)
	}
	return out, nil
}

// FormatMaintenance renders the experiment.
func FormatMaintenance(rows []MaintRow) string {
	var b strings.Builder
	b.WriteString("Maintenance (§2.3): incremental update vs. full refresh of x̃=(2,1)\n")
	b.WriteString("  # seq values   incremental/op   full refresh   ratio\n")
	for _, r := range rows {
		ratio := float64(r.FullRefresh) / float64(r.Incremental)
		fmt.Fprintf(&b, "  %12d   %-16s %-14s %8.1fx\n",
			r.N, fmtDur(r.Incremental), fmtDur(r.FullRefresh), ratio)
	}
	return b.String()
}

// MaintenanceJSON renders the experiment in the BENCH_*.json convention used
// by scripts/bench_window.sh: workload description, host facts, per-size
// medians with raw trials, and the headline refresh-to-incremental ratios.
func MaintenanceJSON(rows []MaintRow) (string, error) {
	type runJSON struct {
		N                   int       `json:"n"`
		IncrementalMedianMs float64   `json:"incremental_median_ms"`
		RefreshMedianMs     float64   `json:"refresh_median_ms"`
		Ratio               float64   `json:"refresh_over_incremental"`
		IncrementalOpsMs    []float64 `json:"incremental_ops_ms"`
		RefreshTrialsMs     []float64 `json:"refresh_trials_ms"`
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	runs := make([]runJSON, 0, len(rows))
	for _, r := range rows {
		rj := runJSON{
			N:                   r.N,
			IncrementalMedianMs: ms(r.Incremental),
			RefreshMedianMs:     ms(r.FullRefresh),
		}
		if r.Incremental > 0 {
			rj.Ratio = roundTo(float64(r.FullRefresh)/float64(r.Incremental), 3)
		}
		for _, d := range r.IncrementalOps {
			rj.IncrementalOpsMs = append(rj.IncrementalOpsMs, ms(d))
		}
		for _, d := range r.RefreshTrials {
			rj.RefreshTrialsMs = append(rj.RefreshTrialsMs, ms(d))
		}
		runs = append(runs, rj)
	}
	out := map[string]any{
		"benchmark": "§2.3 incremental maintenance vs. full refresh",
		"workload": map[string]any{
			"view":            Table2ViewDDL,
			"incremental_ops": maintIncrementalOps,
			"refresh_trials":  maintRefreshTrials,
			"note": "each single-row UPDATE timed individually against a unique " +
				"pos index; medians reported; view checked non-stale after the " +
				"update stream",
		},
		"host": map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
		"runs": runs,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
