package core

import (
	"fmt"
	"math"
)

// Sequence is a *complete simple sequence* (§3, Definition "Complete Simple
// Sequence"): the materialized values of a reporting function over raw data
// x_1 … x_n, including the sequence header (positions 1-h … 0) and trailer
// (positions n+1 … n+l) whose windows still touch the raw data.
//
// Positions outside the stored range are defined by the paper's convention
// x_i = 0 for i outside [1, n]:
//
//   - for algebraic aggregates, At returns 0 left of the header and right of
//     the trailer (cumulative sequences stay at the grand total right of n);
//   - for MIN/MAX, windows that contain no raw position are *empty* and
//     AtOK reports false.
type Sequence struct {
	Win Window
	Agg Agg
	N   int // cardinality of the raw data

	lo    int       // position of vals[0]
	vals  []float64 // stored sequence values
	valid []bool    // nil unless Agg is Min or Max (empty-window tracking)
}

// storedRange returns the [lo, hi] positions a complete sequence over n raw
// values materializes for window w.
func storedRange(w Window, n int) (lo, hi int) {
	if w.Cumulative {
		return 0, n // position 0 carries the empty prefix (value 0)
	}
	return 1 - w.Following, n + w.Preceding
}

// Lo returns the first stored position (the head of the header).
func (s *Sequence) Lo() int { return s.lo }

// Hi returns the last stored position (the tail of the trailer).
func (s *Sequence) Hi() int { return s.lo + len(s.vals) - 1 }

// Len returns the number of stored positions.
func (s *Sequence) Len() int { return len(s.vals) }

// At returns the sequence value at position k, extended outside the stored
// range by the zero convention (see the type comment). For MIN/MAX use AtOK
// to distinguish empty windows.
func (s *Sequence) At(k int) float64 {
	v, _ := s.AtOK(k)
	return v
}

// AtOK returns the sequence value at position k and whether the window at k
// contains at least one raw position.
func (s *Sequence) AtOK(k int) (float64, bool) {
	if k >= s.lo && k <= s.Hi() {
		i := k - s.lo
		if s.valid != nil {
			return s.vals[i], s.valid[i]
		}
		return s.vals[i], true
	}
	if s.Win.Cumulative {
		if k < s.lo {
			return 0, s.Agg.Algebraic() // empty prefix
		}
		// Right of n the cumulative value stays at the grand total.
		i := len(s.vals) - 1
		if s.valid != nil {
			return s.vals[i], s.valid[i]
		}
		return s.vals[i], true
	}
	return 0, false // sliding window entirely outside [1, n]
}

// set stores v at position k, which must lie inside the stored range.
func (s *Sequence) set(k int, v float64, ok bool) {
	i := k - s.lo
	s.vals[i] = v
	if s.valid != nil {
		s.valid[i] = ok
	}
}

// Values returns a copy of the stored values from Lo to Hi.
func (s *Sequence) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Body returns the sequence values at positions 1 … n (header and trailer
// stripped), which is what the reporting function returns to the user.
func (s *Sequence) Body() []float64 {
	out := make([]float64, s.N)
	for k := 1; k <= s.N; k++ {
		out[k-1] = s.At(k)
	}
	return out
}

// newSequence allocates a complete sequence shell for window w over n raw
// values; the values are filled in by the compute functions.
func newSequence(w Window, agg Agg, n int) *Sequence {
	lo, hi := storedRange(w, n)
	s := &Sequence{Win: w, Agg: agg, N: n, lo: lo, vals: make([]float64, hi-lo+1)}
	if agg == Min || agg == Max {
		s.valid = make([]bool, hi-lo+1)
	}
	return s
}

// rawAt returns x_k under the zero-extension convention.
func rawAt(raw []float64, k int) float64 {
	if k < 1 || k > len(raw) {
		return 0
	}
	return raw[k-1]
}

// aggregate applies agg to raw positions [lo, hi] ∩ [1, n].
func aggregate(raw []float64, agg Agg, lo, hi int) (float64, bool) {
	if lo < 1 {
		lo = 1
	}
	if hi > len(raw) {
		hi = len(raw)
	}
	if lo > hi {
		if agg.Algebraic() {
			return 0, true
		}
		return 0, false
	}
	switch agg {
	case Sum:
		v := 0.0
		for i := lo; i <= hi; i++ {
			v += raw[i-1]
		}
		return v, true
	case Count:
		return float64(hi - lo + 1), true
	case Avg:
		v := 0.0
		for i := lo; i <= hi; i++ {
			v += raw[i-1]
		}
		return v / float64(hi-lo+1), true
	case Min:
		v := math.Inf(1)
		for i := lo; i <= hi; i++ {
			if raw[i-1] < v {
				v = raw[i-1]
			}
		}
		return v, true
	case Max:
		v := math.Inf(-1)
		for i := lo; i <= hi; i++ {
			if raw[i-1] > v {
				v = raw[i-1]
			}
		}
		return v, true
	}
	return 0, false
}

// ComputeNaive materializes the complete sequence for window w and aggregate
// agg over raw by evaluating the explicit form at every position — the
// O(n·W) strategy of §2.2 that a relational self-join simulates.
func ComputeNaive(raw []float64, w Window, agg Agg) (*Sequence, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := newSequence(w, agg, len(raw))
	for k := s.lo; k <= s.Hi(); k++ {
		lo, hi := w.Bounds(k)
		v, ok := aggregate(raw, agg, lo, hi)
		s.set(k, v, ok)
	}
	return s, nil
}

// ComputePipelined materializes the complete sequence in a single pass
// (§2.2): cumulative sequences use x̃_k = x̃_{k-1} + x_k; sliding SUM/COUNT
// sequences use the neighbour relationship
//
//	x̃_k = x̃_{k-1} + x_{k+h} − x_{k−l−1}
//
// (three operations per position, independent of the window size, with a
// cache of W+2 values). MIN and MAX, which admit no inverse, use a monotonic
// queue and are still O(n) amortized — the kind of "special operator"
// support the paper attributes to engines with native reporting
// functionality.
func ComputePipelined(raw []float64, w Window, agg Agg) (*Sequence, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := newSequence(w, agg, len(raw))
	if w.Cumulative {
		computeCumulative(raw, s, agg)
		return s, nil
	}
	switch agg {
	case Sum:
		pipelineSum(raw, s, func(k int) float64 { return rawAt(raw, k) })
	case Count:
		pipelineSum(raw, s, func(k int) float64 {
			if k >= 1 && k <= len(raw) {
				return 1
			}
			return 0
		})
	case Avg:
		sum := newSequence(w, Sum, len(raw))
		cnt := newSequence(w, Count, len(raw))
		pipelineSum(raw, sum, func(k int) float64 { return rawAt(raw, k) })
		pipelineSum(raw, cnt, func(k int) float64 {
			if k >= 1 && k <= len(raw) {
				return 1
			}
			return 0
		})
		for k := s.lo; k <= s.Hi(); k++ {
			c := cnt.At(k)
			if c == 0 {
				s.set(k, 0, true)
				continue
			}
			s.set(k, sum.At(k)/c, true)
		}
	case Min, Max:
		monotonicWindow(raw, s, agg)
	default:
		return nil, fmt.Errorf("unknown aggregate %v", agg)
	}
	return s, nil
}

func computeCumulative(raw []float64, s *Sequence, agg Agg) {
	switch agg {
	case Sum:
		acc := 0.0
		s.set(0, 0, true)
		for k := 1; k <= s.N; k++ {
			acc += raw[k-1]
			s.set(k, acc, true)
		}
	case Count:
		s.set(0, 0, true)
		for k := 1; k <= s.N; k++ {
			s.set(k, float64(k), true)
		}
	case Avg:
		acc := 0.0
		s.set(0, 0, true)
		for k := 1; k <= s.N; k++ {
			acc += raw[k-1]
			s.set(k, acc/float64(k), true)
		}
	case Min, Max:
		s.set(0, 0, false)
		best := math.Inf(1)
		if agg == Max {
			best = math.Inf(-1)
		}
		for k := 1; k <= s.N; k++ {
			if agg == Min && raw[k-1] < best {
				best = raw[k-1]
			}
			if agg == Max && raw[k-1] > best {
				best = raw[k-1]
			}
			s.set(k, best, true)
		}
	}
}

// pipelineSum fills a sliding-window sequence of the additive value function
// val using the three-operation recursion of §2.2.
func pipelineSum(raw []float64, s *Sequence, val func(k int) float64) {
	l, h := s.Win.Preceding, s.Win.Following
	// Seed the first stored position explicitly (its window is [lo-l, lo+h]).
	k0 := s.lo
	acc := 0.0
	for j := k0 - l; j <= k0+h; j++ {
		acc += val(j)
	}
	s.set(k0, acc, true)
	for k := k0 + 1; k <= s.Hi(); k++ {
		acc += val(k+h) - val(k-l-1)
		s.set(k, acc, true)
	}
}

// monotonicWindow computes sliding MIN/MAX with a monotonic deque in O(n).
func monotonicWindow(raw []float64, s *Sequence, agg Agg) {
	l, h := s.Win.Preceding, s.Win.Following
	better := func(a, b float64) bool {
		if agg == Min {
			return a <= b
		}
		return a >= b
	}
	type entry struct {
		pos int
		val float64
	}
	var dq []entry
	next := 1 // next raw position to admit
	for k := s.lo; k <= s.Hi(); k++ {
		winLo, winHi := k-l, k+h
		for next <= s.N && next <= winHi {
			v := raw[next-1]
			for len(dq) > 0 && better(v, dq[len(dq)-1].val) {
				dq = dq[:len(dq)-1]
			}
			dq = append(dq, entry{next, v})
			next++
		}
		for len(dq) > 0 && dq[0].pos < winLo {
			dq = dq[1:]
		}
		if len(dq) == 0 {
			s.set(k, 0, false)
		} else {
			s.set(k, dq[0].val, true)
		}
	}
}

// EqualSeq reports whether two sequences carry identical values (within eps)
// and validity over the union of their stored ranges. It is the workhorse of
// the derivation property tests.
func EqualSeq(a, b *Sequence, eps float64) bool {
	if a.N != b.N {
		return false
	}
	lo := minInt(a.lo, b.lo)
	hi := maxInt(a.Hi(), b.Hi())
	for k := lo; k <= hi; k++ {
		av, aok := a.AtOK(k)
		bv, bok := b.AtOK(k)
		if aok != bok {
			return false
		}
		if aok && math.Abs(av-bv) > eps {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
