package expr

import (
	"fmt"

	"rfview/internal/sqltypes"
)

// AggAcc is an aggregate accumulator. Grouping operators feed it one datum
// per qualifying row; window operators additionally use Remove (where
// supported) to slide frames in O(1) per step, mirroring the paper's
// pipelined evaluation of §2.2.
type AggAcc interface {
	// Add folds one input value into the aggregate. NULLs are ignored, per
	// SQL semantics (COUNT(*) feeds a non-NULL marker for every row).
	Add(d sqltypes.Datum)
	// Result returns the current aggregate value (NULL for empty input,
	// except COUNT which returns 0).
	Result() sqltypes.Datum
	// Reset clears the accumulator.
	Reset()
	// Removable reports whether Remove is supported (true for the algebraic
	// aggregates SUM/COUNT/AVG, false for MIN/MAX).
	Removable() bool
	// Remove cancels a previous Add of d. Panics if !Removable().
	Remove(d sqltypes.Datum)
}

// NewAgg builds an accumulator for the named aggregate (SUM, COUNT, AVG,
// MIN, MAX).
func NewAgg(name string) (AggAcc, error) {
	switch name {
	case "SUM":
		return &sumAcc{}, nil
	case "COUNT":
		return &countAcc{}, nil
	case "AVG":
		return &avgAcc{}, nil
	case "MIN":
		return &minMaxAcc{min: true}, nil
	case "MAX":
		return &minMaxAcc{min: false}, nil
	default:
		return nil, fmt.Errorf("unknown aggregate %s()", name)
	}
}

// sumAcc keeps integer sums exact and upgrades to float on the first float
// input, following DB2's SUM result typing.
type sumAcc struct {
	n       int64
	isum    int64
	fsum    float64
	isFloat bool
}

func (a *sumAcc) Add(d sqltypes.Datum) {
	if d.IsNull() {
		return
	}
	a.n++
	if d.Typ() == sqltypes.Float || a.isFloat {
		if !a.isFloat {
			a.fsum = float64(a.isum)
			a.isFloat = true
		}
		a.fsum += d.Float()
		return
	}
	a.isum += d.Int()
}

func (a *sumAcc) Remove(d sqltypes.Datum) {
	if d.IsNull() {
		return
	}
	a.n--
	if a.isFloat {
		a.fsum -= d.Float()
		return
	}
	a.isum -= d.Int()
}

func (a *sumAcc) Result() sqltypes.Datum {
	if a.n == 0 {
		return sqltypes.NullDatum
	}
	if a.isFloat {
		return sqltypes.NewFloat(a.fsum)
	}
	return sqltypes.NewInt(a.isum)
}

func (a *sumAcc) Reset()          { *a = sumAcc{} }
func (a *sumAcc) Removable() bool { return true }

type countAcc struct{ n int64 }

func (a *countAcc) Add(d sqltypes.Datum) {
	if !d.IsNull() {
		a.n++
	}
}

func (a *countAcc) Remove(d sqltypes.Datum) {
	if !d.IsNull() {
		a.n--
	}
}

func (a *countAcc) Result() sqltypes.Datum { return sqltypes.NewInt(a.n) }
func (a *countAcc) Reset()                 { a.n = 0 }
func (a *countAcc) Removable() bool        { return true }

type avgAcc struct {
	n   int64
	sum float64
}

func (a *avgAcc) Add(d sqltypes.Datum) {
	if d.IsNull() {
		return
	}
	a.n++
	a.sum += d.Float()
}

func (a *avgAcc) Remove(d sqltypes.Datum) {
	if d.IsNull() {
		return
	}
	a.n--
	a.sum -= d.Float()
}

func (a *avgAcc) Result() sqltypes.Datum {
	if a.n == 0 {
		return sqltypes.NullDatum
	}
	return sqltypes.NewFloat(a.sum / float64(a.n))
}

func (a *avgAcc) Reset()          { *a = avgAcc{} }
func (a *avgAcc) Removable() bool { return true }

// minMaxAcc is the semi-algebraic pair: no inverse, so no Remove. Window
// operators recompute or use a monotonic structure instead.
type minMaxAcc struct {
	min  bool
	seen bool
	best sqltypes.Datum
}

func (a *minMaxAcc) Add(d sqltypes.Datum) {
	if d.IsNull() {
		return
	}
	if !a.seen {
		a.best = d
		a.seen = true
		return
	}
	cmp, err := sqltypes.Compare(d, a.best)
	if err != nil {
		return
	}
	if (a.min && cmp < 0) || (!a.min && cmp > 0) {
		a.best = d
	}
}

func (a *minMaxAcc) Result() sqltypes.Datum {
	if !a.seen {
		return sqltypes.NullDatum
	}
	return a.best
}

func (a *minMaxAcc) Reset() { a.seen = false; a.best = sqltypes.NullDatum }

func (a *minMaxAcc) Removable() bool { return false }

func (a *minMaxAcc) Remove(sqltypes.Datum) {
	panic("expr: Remove on MIN/MAX accumulator (semi-algebraic aggregates have no inverse)")
}

// AggResultType returns the static result type of an aggregate over an input
// of the given type.
func AggResultType(name string, input sqltypes.Type) sqltypes.Type {
	switch name {
	case "COUNT":
		return sqltypes.Int
	case "AVG":
		return sqltypes.Float
	case "SUM":
		if input == sqltypes.Float {
			return sqltypes.Float
		}
		return sqltypes.Int
	default: // MIN/MAX preserve the input type
		return input
	}
}
