package plan

import (
	"strings"
	"testing"

	"rfview/internal/exec"
	"rfview/internal/sqlparser"
)

// specOf parses one OVER clause and returns its canonical spec.
func specOf(t *testing.T, over string) WindowSpec {
	t.Helper()
	stmt, err := sqlparser.Parse("SELECT SUM(val) OVER (" + over + ") FROM seq")
	if err != nil {
		t.Fatalf("parse OVER (%s): %v", over, err)
	}
	sel := stmt.(*sqlparser.Select)
	w, ok := sel.Items[0].Expr.(*sqlparser.WindowExpr)
	if !ok {
		t.Fatalf("item is %T, want WindowExpr", sel.Items[0].Expr)
	}
	return SpecOf(w)
}

func TestWindowSpecEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// Partition equality is set-based; written order is irrelevant.
		{"PARTITION BY a, b ORDER BY x", "PARTITION BY b, a ORDER BY x", true},
		{"PARTITION BY a ORDER BY x", "PARTITION BY b ORDER BY x", false},
		// NULLS defaults resolve before comparison: ASC defaults to NULLS
		// FIRST, DESC to NULLS LAST.
		{"ORDER BY x", "ORDER BY x NULLS FIRST", true},
		{"ORDER BY x DESC", "ORDER BY x DESC NULLS LAST", true},
		{"ORDER BY x", "ORDER BY x NULLS LAST", false},
		{"ORDER BY x", "ORDER BY x DESC", false},
		// Order is a sequence, not a set.
		{"ORDER BY x, y", "ORDER BY y, x", false},
		{"ORDER BY x", "ORDER BY x, y", false},
	}
	for _, tc := range cases {
		a, b := specOf(t, tc.a), specOf(t, tc.b)
		if got := a.Equal(b); got != tc.want {
			t.Errorf("Equal(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := b.Equal(a); got != tc.want {
			t.Errorf("Equal(%q, %q) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestWindowSpecPrefixOf(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"PARTITION BY a ORDER BY x", "PARTITION BY a ORDER BY x, y", true},
		{"PARTITION BY a", "PARTITION BY a ORDER BY x", true},
		{"PARTITION BY a ORDER BY x, y", "PARTITION BY a ORDER BY x", false},
		{"PARTITION BY a ORDER BY x", "PARTITION BY b ORDER BY x, y", false},
		// Direction and NULLS placement are part of the key: x ASC is not a
		// prefix of x DESC, y.
		{"ORDER BY x", "ORDER BY x DESC, y", false},
		{"ORDER BY x NULLS LAST", "ORDER BY x, y", false},
		{"ORDER BY x", "ORDER BY x, y", true},
	}
	for _, tc := range cases {
		a, b := specOf(t, tc.a), specOf(t, tc.b)
		if got := a.PrefixOf(b); got != tc.want {
			t.Errorf("PrefixOf(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWindowSpecCompatible(t *testing.T) {
	cases := []struct {
		spec, stream string
		want         Reuse
	}{
		// Stream sorted for the same class: full reuse.
		{"PARTITION BY a ORDER BY x", "PARTITION BY a ORDER BY x, y", ReuseFull},
		{"PARTITION BY a", "PARTITION BY a ORDER BY x", ReuseFull},
		// Partition prefix holds but the order keys diverge: segments reuse.
		{"PARTITION BY a ORDER BY y", "PARTITION BY a ORDER BY x", ReuseSegmented},
		{"PARTITION BY a ORDER BY x DESC", "PARTITION BY a ORDER BY x", ReuseSegmented},
		// Different partition set: nothing to reuse.
		{"PARTITION BY b ORDER BY x", "PARTITION BY a ORDER BY x", ReuseNone},
		{"PARTITION BY a, b ORDER BY x", "PARTITION BY a ORDER BY x", ReuseNone},
		// Empty partition: the whole stream is one segment, so the grade is
		// at least segmented (the sequencer separately refuses to use it).
		{"ORDER BY y", "ORDER BY x", ReuseSegmented},
		{"ORDER BY x", "ORDER BY x, y", ReuseFull},
	}
	for _, tc := range cases {
		spec := specOf(t, tc.spec)
		stream := specOf(t, tc.stream)
		ordering := append(append([]SpecKey(nil), stream.Partition...), stream.Order...)
		if got := spec.Compatible(ordering); got != tc.want {
			t.Errorf("Compatible(%q vs stream %q) = %v, want %v", tc.spec, tc.stream, got, tc.want)
		}
	}
}

func TestWindowSpecKeyRendering(t *testing.T) {
	// Key() is the grouping currency: equal specs must render identically,
	// and non-default NULLS placement must be visible.
	if a, b := specOf(t, "ORDER BY x"), specOf(t, "ORDER BY x NULLS FIRST"); a.Key() != b.Key() {
		t.Errorf("default NULLS placement renders differently: %q vs %q", a.Key(), b.Key())
	}
	nl := specOf(t, "ORDER BY x NULLS LAST")
	if !strings.Contains(nl.Key(), "NULLS LAST") {
		t.Errorf("non-default placement invisible in key: %q", nl.Key())
	}
	if a := specOf(t, "ORDER BY x DESC"); strings.Contains(a.Key(), "NULLS") {
		t.Errorf("DESC default placement should render terse: %q", a.Key())
	}
}

func TestWindowSpecPlainAccessors(t *testing.T) {
	s := specOf(t, "PARTITION BY a, b ORDER BY pos")
	part, ok := s.PlainPartition()
	if !ok || len(part) != 2 || part[0] != "a" || part[1] != "b" {
		t.Fatalf("PlainPartition = %v, %v", part, ok)
	}
	col, ok := s.PlainOrder()
	if !ok || col != "pos" {
		t.Fatalf("PlainOrder = %q, %v", col, ok)
	}
	for _, bad := range []string{
		"ORDER BY pos DESC",
		"ORDER BY pos NULLS LAST",
		"ORDER BY pos, val",
		"ORDER BY pos + 1",
		"PARTITION BY a",
	} {
		if _, ok := specOf(t, bad).PlainOrder(); ok {
			t.Errorf("PlainOrder accepted %q", bad)
		}
	}
	if _, ok := specOf(t, "PARTITION BY a + 1 ORDER BY pos").PlainPartition(); ok {
		t.Error("PlainPartition accepted an expression key")
	}
}

func TestSpecKeyExecNulls(t *testing.T) {
	for _, tc := range []struct {
		over string
		want exec.NullsPlacement
	}{
		{"ORDER BY x", exec.NullsAuto},
		{"ORDER BY x NULLS FIRST", exec.NullsAuto},
		{"ORDER BY x NULLS LAST", exec.NullsLast},
		{"ORDER BY x DESC", exec.NullsAuto},
		{"ORDER BY x DESC NULLS LAST", exec.NullsAuto},
		{"ORDER BY x DESC NULLS FIRST", exec.NullsFirst},
	} {
		if got := specOf(t, tc.over).Order[0].execNulls(); got != tc.want {
			t.Errorf("execNulls(%q) = %v, want %v", tc.over, got, tc.want)
		}
	}
}

// groupsOf builds windowGroups (one per clause) for class-formation tests.
func groupsOf(t *testing.T, overs ...string) []*windowGroup {
	t.Helper()
	out := make([]*windowGroup, len(overs))
	for i, o := range overs {
		out[i] = &windowGroup{spec: specOf(t, o)}
	}
	return out
}

func TestBuildSpecClassesPrefixChaining(t *testing.T) {
	// Three specs over one partition set whose orders chain by prefix merge
	// into one class whose suffix is the longest chain; the divergent fourth
	// member stays in the class but runs segmented.
	classes := buildSpecClasses(groupsOf(t,
		"PARTITION BY a ORDER BY x",
		"PARTITION BY a ORDER BY x, y",
		"PARTITION BY a",
		"PARTITION BY a ORDER BY z",
	))
	if len(classes) != 1 {
		t.Fatalf("%d classes, want 1", len(classes))
	}
	c := classes[0]
	if len(c.suffix) != 2 || c.suffix[0].Expr != "x" || c.suffix[1].Expr != "y" {
		t.Fatalf("suffix = %v, want [x y]", c.suffix)
	}
	wantPresort := []bool{true, true, true, false}
	for i, p := range c.presort {
		if p != wantPresort[i] {
			t.Errorf("presort[%d] = %v, want %v", i, p, wantPresort[i])
		}
	}
}

func TestBuildSpecClassesCanonicalPartitionOrder(t *testing.T) {
	// b appears in two specs, a in one: the canonical order of the {a,b}
	// class leads with b, so the {b} class's sort is its prefix.
	classes := buildSpecClasses(groupsOf(t,
		"PARTITION BY a, b ORDER BY x",
		"PARTITION BY b ORDER BY y",
	))
	if len(classes) != 2 {
		t.Fatalf("%d classes, want 2", len(classes))
	}
	if got := classes[0].part; got[0].Expr != "b" || got[1].Expr != "a" {
		t.Fatalf("canonical partition order = [%s %s], want [b a]", got[0].Expr, got[1].Expr)
	}
}

func TestSequenceClassesSegmentedReuse(t *testing.T) {
	// The {a,b} class sorts first with canonical order [b, a] (b is more
	// frequent), so the {b} class finds its partitions contiguous but its
	// order keys wrong: segmented reuse, no second Sort.
	steps := sequenceClasses(buildSpecClasses(groupsOf(t,
		"PARTITION BY a, b ORDER BY x",
		"PARTITION BY b ORDER BY y",
	)))
	if len(steps) != 2 {
		t.Fatalf("%d steps, want 2", len(steps))
	}
	if !steps[0].needSort || steps[0].resortFull {
		t.Fatalf("step 0: needSort=%v resortFull=%v, want true/false", steps[0].needSort, steps[0].resortFull)
	}
	if steps[1].needSort || !steps[1].segmented {
		t.Fatalf("step 1: needSort=%v segmented=%v, want false/true", steps[1].needSort, steps[1].segmented)
	}
}

func TestSequenceClassesCrossClassFullReuse(t *testing.T) {
	// The {a,b} class's canonical sort is [b, a, x]; the {b} class ordering
	// by a then x reads that stream as fully sorted — no Sort at all.
	steps := sequenceClasses(buildSpecClasses(groupsOf(t,
		"PARTITION BY a, b ORDER BY x",
		"PARTITION BY b ORDER BY a, x",
	)))
	if len(steps) != 2 {
		t.Fatalf("%d steps, want 2", len(steps))
	}
	if !steps[0].needSort {
		t.Fatal("step 0 must emit the class sort")
	}
	if steps[1].needSort || steps[1].segmented {
		t.Fatalf("step 1: needSort=%v segmented=%v, want full reuse (false/false)",
			steps[1].needSort, steps[1].segmented)
	}
}

func TestSequenceClassesEmptyPartitionDemotion(t *testing.T) {
	// An unpartitioned class whose order diverges from the stream would
	// grade segmented — but its one "segment" is the whole stream, so an
	// in-operator re-sort is a full sort per member. The sequencer demotes
	// it to a shared Sort of its own, flagged as the full re-sort it is.
	steps := sequenceClasses(buildSpecClasses(groupsOf(t,
		"PARTITION BY a ORDER BY x",
		"ORDER BY y DESC",
	)))
	if len(steps) != 2 {
		t.Fatalf("%d steps, want 2", len(steps))
	}
	for i, s := range steps {
		if !s.needSort || s.segmented {
			t.Fatalf("step %d: needSort=%v segmented=%v, want true/false", i, s.needSort, s.segmented)
		}
	}
	if steps[0].resortFull || !steps[1].resortFull {
		t.Fatalf("resortFull = %v/%v, want false/true", steps[0].resortFull, steps[1].resortFull)
	}
}

func TestSequenceClassesSamePartitionDivergentOrders(t *testing.T) {
	// Same partition set with incompatible orders is ONE class: one shared
	// Sort, the chaining member presorted, the divergent member re-sorting
	// its segments in the operator.
	classes := buildSpecClasses(groupsOf(t,
		"PARTITION BY a ORDER BY x",
		"PARTITION BY a ORDER BY y DESC",
	))
	if len(classes) != 1 {
		t.Fatalf("%d classes, want 1", len(classes))
	}
	steps := sequenceClasses(classes)
	if len(steps) != 1 || !steps[0].needSort {
		t.Fatalf("steps = %+v, want one sorting step", steps)
	}
	if p := steps[0].class.presort; !p[0] || p[1] {
		t.Fatalf("presort = %v, want [true false]", p)
	}
}

// walk collects every operator in the tree.
func walk(op exec.Operator, visit func(exec.Operator)) {
	visit(op)
	for _, c := range op.Children() {
		walk(c, visit)
	}
}

func TestPlanSharedSortOperatorShape(t *testing.T) {
	// Four OVER clauses over two spec classes: the plan must carry exactly
	// two Sorts, shared-consumer Windows, and the Ordinal/Restore bracket.
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `SELECT
		SUM(b) OVER (PARTITION BY a ORDER BY b) AS w1,
		COUNT(b) OVER (PARTITION BY a ORDER BY b, a) AS w2,
		MIN(b) OVER (ORDER BY b DESC) AS w3,
		MAX(b) OVER (ORDER BY b DESC, a) AS w4
		FROM t1`)
	var sorts, windows, ordinals, restores int
	walk(op, func(o exec.Operator) {
		switch w := o.(type) {
		case *exec.Sort:
			sorts++
			if w.SharedClass == 0 {
				t.Error("plan Sort missing SharedClass")
			}
		case *exec.Window:
			windows++
			if !w.Shared || !w.PreSorted || w.OrdinalCol < 0 {
				t.Errorf("window not a pre-sorted shared consumer: Shared=%v PreSorted=%v OrdinalCol=%d",
					w.Shared, w.PreSorted, w.OrdinalCol)
			}
		case *exec.Ordinal:
			ordinals++
		case *exec.Restore:
			restores++
		}
	})
	if sorts != 2 {
		t.Errorf("%d Sort operators, want 2 (one per class)", sorts)
	}
	if windows != 4 {
		t.Errorf("%d Window operators, want 4", windows)
	}
	if ordinals != 1 || restores != 1 {
		t.Errorf("bracket = %d Ordinal / %d Restore, want 1/1", ordinals, restores)
	}
}

func TestPlanNoSharedSortKeepsLegacyShape(t *testing.T) {
	cat := newTestCatalog(t, false)
	opts := DefaultOptions()
	opts.NoSharedSort = true
	op := planQuery(t, cat, opts, `SELECT
		SUM(val) OVER (PARTITION BY pos ORDER BY val) AS a,
		MIN(val) OVER (ORDER BY pos) AS b
		FROM seq`)
	walk(op, func(o exec.Operator) {
		switch w := o.(type) {
		case *exec.Sort:
			t.Error("NoSharedSort plan grew a Sort operator")
		case *exec.Window:
			if w.Shared || w.PreSorted || w.OrdinalCol != -1 {
				t.Errorf("legacy window carries shared wiring: %+v", w)
			}
		case *exec.Ordinal, *exec.Restore:
			t.Errorf("legacy plan contains %T", w)
		}
	})
}

func TestPlanSingleSpecStaysLegacy(t *testing.T) {
	// Two functions over one identical spec: one Window, no bracket — the
	// shared pass must not fire for a single group.
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `SELECT
		SUM(val) OVER (PARTITION BY pos ORDER BY val) AS a,
		COUNT(val) OVER (PARTITION BY pos ORDER BY val) AS b
		FROM seq`)
	var windows int
	walk(op, func(o exec.Operator) {
		switch w := o.(type) {
		case *exec.Window:
			windows++
			if w.Shared {
				t.Error("single-spec plan marked Shared")
			}
			if len(w.Funcs) != 2 {
				t.Errorf("window has %d funcs, want 2", len(w.Funcs))
			}
		case *exec.Ordinal, *exec.Restore, *exec.Sort:
			t.Errorf("single-spec plan contains %T", w)
		}
	})
	if windows != 1 {
		t.Errorf("%d Window operators, want 1", windows)
	}
}
