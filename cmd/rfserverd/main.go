// Command rfserverd serves an rfview engine over TCP, speaking the
// newline-delimited JSON protocol of internal/server.
//
// Usage:
//
//	rfserverd [-addr host:port] [-init script.sql] [-plan-cache N]
//	          [-data-dir DIR] [-fsync always|interval|off] [-checkpoint-every N]
//	          [-no-native-window] [-no-indexes] [-no-views] [-no-vectorized]
//	          [-strategy auto|maxoa|minoa] [-form disjunctive|union]
//	          [-window-parallelism N] [-mem-budget SIZE] [-page-size SIZE]
//	          [-view-maintenance eager|deferred|off] [-maintenance-interval D]
//	          [-metrics-addr host:port] [-pprof-addr host:port] [-slow-query-ms N]
//
// -metrics-addr starts an HTTP listener serving the engine's Prometheus
// text exposition at /metrics (the same payload the protocol's "metrics" op
// returns). -pprof-addr starts a net/http/pprof listener (intended for
// loopback addresses: profiles expose query shapes) for CPU/heap profiling.
// -slow-query-ms logs every read statement slower than N milliseconds, with
// its analyzed per-operator plan. -no-vectorized forces the boxed executor
// path, for A/B measurement against the typed columnar fast path.
// -mem-budget caps executor working memory (e.g. 64MiB): sorts and window
// partition orderings over the budget spill memcomparable runs to disk —
// under <data-dir>/tmp when durable, else a private temp directory — and
// merge them back with bit-identical results. Stale run files from a
// crashed process are swept at startup; a clean shutdown removes them all.
// -page-size sets the slotted-page size of paged heap storage (e.g. 8KiB,
// the default): table rows live in pages cached by a buffer pool whose
// residency is charged against the same -mem-budget, so one knob governs
// total executor memory. Heap files share the spill directory and its
// startup sweep/shutdown cleanup.
// -view-maintenance selects how DML reaches materialized sequence views:
// eager (default) folds the delta in inside the write, deferred queues
// deltas and applies them before the next read (read-repair) or on the
// -maintenance-interval background tick, off marks views stale and leaves
// REFRESH as the only repair.
//
// With -data-dir the server is durable: every committed DDL/DML/REFRESH is
// written ahead to a logical WAL under DIR, state is periodically
// checkpointed into snapshots, and startup recovers the pre-crash state by
// loading the newest snapshot and replaying the WAL tail. Without -data-dir
// the server is volatile, as before.
//
// The optional -init script runs before the listener opens (schema, data
// load, materialized views). Under -data-dir it runs only when the data
// directory is fresh — a recovered server already has its state.
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests complete,
// connections drain, and (when durable) a final checkpoint runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux, served by -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rfview/internal/engine"
	"rfview/internal/mview"
	"rfview/internal/rewrite"
	"rfview/internal/server"
	"rfview/internal/spill"
	"rfview/internal/storage"
	"rfview/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	initScript := flag.String("init", "", "SQL script executed before serving (durable servers: only on a fresh data dir)")
	planCache := flag.Int("plan-cache", engine.DefaultPlanCacheCapacity, "plan cache capacity (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown deadline")
	dataDir := flag.String("data-dir", "", "durability directory (empty = volatile server)")
	fsyncPolicy := flag.String("fsync", "always", "WAL fsync policy: always, interval, off")
	checkpointEvery := flag.Int("checkpoint-every", 1024, "statements between automatic checkpoints (0 disables)")
	noWindow := flag.Bool("no-native-window", false, "disable the native window operator")
	noIndexes := flag.Bool("no-indexes", false, "disable index nested-loop joins")
	noViews := flag.Bool("no-views", false, "disable answering queries from materialized sequence views")
	strategy := flag.String("strategy", "auto", "derivation strategy: auto, maxoa, minoa")
	form := flag.String("form", "disjunctive", "derivation pattern form: disjunctive, union")
	windowPar := flag.Int("window-parallelism", 0,
		"window partition workers: 0 = GOMAXPROCS, 1 = sequential, N = up to N workers")
	noVectorized := flag.Bool("no-vectorized", false, "disable the typed columnar fast path (key-normalized sorts, typed window kernels)")
	memBudget := flag.String("mem-budget", "", "executor memory budget, e.g. 64MiB; sorts and window partitions over budget spill to disk (empty = unlimited)")
	pageSize := flag.String("page-size", "", "paged-storage page size, e.g. 8KiB (empty = default); \"off\" keeps all table rows resident in memory")
	viewMaint := flag.String("view-maintenance", "eager", "view maintenance mode: eager, deferred, off")
	maintInterval := flag.Duration("maintenance-interval", time.Second, "background drain cadence for deferred view maintenance (0 disables; reads still drain)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics (empty = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "HTTP listen address for net/http/pprof (empty = disabled; use a loopback address)")
	slowQueryMs := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds, with their analyzed plan (0 disables)")
	flag.Parse()

	opts := engine.DefaultOptions()
	opts.NativeWindow = !*noWindow
	opts.WindowParallelism = *windowPar
	opts.UseIndexes = !*noIndexes
	opts.UseMatViews = !*noViews
	opts.DisableVectorized = *noVectorized
	if *memBudget != "" {
		n, err := spill.ParseBytes(*memBudget)
		if err != nil {
			log.Fatalf("-mem-budget: %v", err)
		}
		opts.MemoryBudgetBytes = n
	}
	switch {
	case strings.EqualFold(*pageSize, "off"):
		opts.DisablePagedStorage = true
	case *pageSize != "":
		n, err := spill.ParseBytes(*pageSize)
		if err != nil {
			log.Fatalf("-page-size: %v", err)
		}
		if n < storage.MinPageSize || n > storage.MaxPageSize {
			log.Fatalf("-page-size: %s out of range [%d, %d] bytes", *pageSize, storage.MinPageSize, storage.MaxPageSize)
		}
		opts.PageSize = int(n)
	}
	if *dataDir != "" {
		opts.SpillDir = filepath.Join(*dataDir, "tmp")
	}
	if _, err := mview.ParseMode(*viewMaint); err != nil {
		log.Fatalf("-view-maintenance: %v", err)
	}
	opts.ViewMaintenance = *viewMaint
	switch strings.ToLower(*strategy) {
	case "auto":
		opts.Strategy = rewrite.StrategyAuto
	case "maxoa":
		opts.Strategy = rewrite.StrategyMaxOA
	case "minoa":
		opts.Strategy = rewrite.StrategyMinOA
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	switch strings.ToLower(*form) {
	case "disjunctive":
		opts.Form = rewrite.FormDisjunctive
	case "union":
		opts.Form = rewrite.FormUnion
	default:
		log.Fatalf("unknown form %q", *form)
	}

	var e *engine.Engine
	var mgr *wal.Manager
	runInit := *initScript != ""
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("%v", err)
		}
		mgr, err = wal.Open(wal.Options{
			Dir:             *dataDir,
			Sync:            policy,
			CheckpointEvery: *checkpointEvery,
		}, opts)
		if err != nil {
			log.Fatalf("durability: %v", err)
		}
		e = mgr.Engine()
		rec := mgr.Recovery()
		if rec.Fresh {
			log.Printf("data dir %s is fresh", *dataDir)
		} else {
			log.Printf("recovered from %s: snapshot lsn=%d, %d WAL records replayed (%d replay errors)",
				*dataDir, rec.SnapshotLSN, rec.RecordsReplayed, rec.ReplayErrors)
			if runInit {
				log.Printf("init script %s skipped: data dir already has state", *initScript)
				runInit = false
			}
		}
	} else {
		e = engine.New(opts)
	}
	e.SetPlanCacheCapacity(*planCache)
	if opts.SpillDir != "" {
		if n, err := e.SweepSpill(); err != nil {
			log.Printf("spill: startup sweep: %v", err)
		} else if n > 0 {
			log.Printf("spill: swept %d stale run file(s) from %s", n, opts.SpillDir)
		}
	}
	if runInit {
		sql, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("init: %v", err)
		}
		if _, err := e.ExecAllContext(context.Background(), string(sql)); err != nil {
			log.Fatalf("init: %v", err)
		}
		log.Printf("init script %s applied", *initScript)
	}

	if *slowQueryMs > 0 {
		threshold := time.Duration(*slowQueryMs) * time.Millisecond
		e.SetSlowQueryLog(threshold, func(q engine.SlowQuery) {
			log.Printf("slow query (%s > %s): %s\n%s", q.Elapsed.Round(time.Microsecond), threshold, q.SQL, q.Plan)
		})
	}

	// Deferred maintenance converges on reads; the background ticker bounds
	// how long queued deltas can sit when no reads arrive.
	stopDrain := make(chan struct{})
	if e.MaintenanceMode() == mview.ModeDeferred && *maintInterval > 0 {
		go func() {
			t := time.NewTicker(*maintInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					e.DrainMaintenance()
				case <-stopDrain:
					return
				}
			}
		}()
	}

	srv := server.New(e)
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", e.Metrics().Handler())
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", mlis.Addr())
		go func() {
			if err := http.Serve(mlis, mux); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; serve that mux only on this listener, so the
		// profiling surface never shares a port with metrics or the protocol.
		plis, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", plis.Addr())
		go func() {
			if err := http.Serve(plis, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// The ready line goes to stdout so scripts can wait for it.
	fmt.Printf("rfserverd listening on %s\n", lis.Addr())
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("signal %v: draining", s)
		close(stopDrain)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if mgr != nil {
			if err := mgr.Close(); err != nil {
				log.Printf("durability: final checkpoint: %v", err)
			}
		}
		if err := e.Close(); err != nil {
			log.Printf("spill cleanup: %v", err)
		}
		st := srv.Stats()
		cs := e.PlanCacheStats()
		log.Printf("served %d requests over %d connections (%d errors); plan cache %d/%d entries, %d hits, %d misses",
			st.Requests, st.Accepted, st.Errors, cs.Len, cs.Capacity, cs.Hits, cs.Misses)
	}
}
