package engine

import (
	"math"
	"strings"
	"testing"

	"rfview/internal/sqltypes"
	"rfview/internal/txn"
)

// TestCommitRecordRoundTrip pins the codec: a delta list survives
// encode/decode bit-exactly, including the values SQL comparison semantics
// would mangle — negative-zero and NaN floats, empty vs absent strings,
// NULLs, and dates.
func TestCommitRecordRoundTrip(t *testing.T) {
	deltas := []txn.Delta{
		{
			Table: "t1", Kind: txn.DeltaInsert, Cols: []string{"a", "b", "c", "d", "e"},
			Rows: []sqltypes.Row{
				{sqltypes.NewInt(-7), sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewString(""), sqltypes.NullDatum, sqltypes.NewBool(true)},
				{sqltypes.NewInt(1 << 62), sqltypes.NewFloat(math.NaN()), sqltypes.NewString("x\ny\x00z"), sqltypes.NewDate(19000), sqltypes.NewBool(false)},
			},
		},
		{
			Table: "t2", Kind: txn.DeltaUpdate, Cols: []string{"a"},
			Before: []sqltypes.Row{{sqltypes.NewFloat(1.5)}},
			After:  []sqltypes.Row{{sqltypes.NewFloat(2.5)}},
		},
		{
			Table: "t2", Kind: txn.DeltaDelete, Cols: []string{"a"},
			Rows: []sqltypes.Row{{sqltypes.NewString("gone")}},
		},
	}
	rec, err := encodeCommitRecord(deltas)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCommitRecord(rec) {
		t.Fatalf("encoded record not recognized: %q", rec)
	}
	if strings.ContainsAny(rec, "\n") {
		t.Fatalf("record contains a newline; it would corrupt the line-oriented log: %q", rec)
	}
	got, err := decodeCommitRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(deltas) {
		t.Fatalf("got %d deltas, want %d", len(got), len(deltas))
	}
	for i, d := range deltas {
		g := got[i]
		if g.Table != d.Table || g.Kind != d.Kind {
			t.Fatalf("delta %d header mismatch: got %+v", i, g)
		}
		check := func(name string, want, have []sqltypes.Row) {
			if len(want) != len(have) {
				t.Fatalf("delta %d %s: %d rows, want %d", i, name, len(have), len(want))
			}
			for r := range want {
				if !rowIdentical(want[r], have[r]) {
					t.Fatalf("delta %d %s row %d: got %v, want %v", i, name, r, have[r], want[r])
				}
			}
		}
		check("rows", d.Rows, g.Rows)
		check("before", d.Before, g.Before)
		check("after", d.After, g.After)
	}

	// A SQL statement must never be mistaken for a commit record.
	for _, sql := range []string{"SELECT 1", "INSERT INTO t VALUES (1)", "-- comment", ""} {
		if IsCommitRecord(sql) {
			t.Fatalf("%q misclassified as commit record", sql)
		}
	}
	if _, err := decodeCommitRecord(commitMarker + "{not json"); err == nil {
		t.Fatal("corrupt payload decoded without error")
	}
}

// TestApplyCommitRecord replays an encoded transaction into a fresh engine
// and checks the effects land exactly once.
func TestApplyCommitRecord(t *testing.T) {
	build := func() *Engine {
		e := newEngine(t)
		mustExec(t, e, "CREATE TABLE seq (pos INTEGER, val INTEGER)")
		mustExec(t, e, "INSERT INTO seq VALUES (1, 1), (2, 2), (3, 3)")
		return e
	}

	// Run a transaction on one engine and capture its commit record.
	src := build()
	var rec string
	srcSess := src.NewSession()
	mustSess(t, srcSess, "BEGIN")
	mustSess(t, srcSess, "INSERT INTO seq VALUES (4, 4)")
	mustSess(t, srcSess, "UPDATE seq SET val = 20 WHERE pos = 2")
	mustSess(t, srcSess, "DELETE FROM seq WHERE pos = 3")
	tx := srcSess.tx
	rec, err := encodeCommitRecord(tx.Deltas)
	if err != nil {
		t.Fatal(err)
	}
	mustSess(t, srcSess, "COMMIT")

	// Replay it into a second engine that saw only the initial load.
	dst := build()
	if err := dst.ApplyCommitRecord(rec); err != nil {
		t.Fatal(err)
	}
	want := oracleEncode(t, mustExec(t, src, "SELECT pos, val FROM seq"), nil)
	got := oracleEncode(t, mustExec(t, dst, "SELECT pos, val FROM seq"), nil)
	if got != want {
		t.Fatalf("replayed state diverged\n got: %q\nwant: %q", got, want)
	}

	// Replay against an engine missing the update target must fail cleanly
	// and leave nothing half-applied.
	third := New(DefaultOptions())
	mustExec(t, third, "CREATE TABLE seq (pos INTEGER, val INTEGER)")
	mustExec(t, third, "INSERT INTO seq VALUES (1, 1)") // pos 2 and 3 absent
	if err := third.ApplyCommitRecord(rec); err == nil {
		t.Fatal("replay against divergent state should fail")
	}
	res := mustExec(t, third, "SELECT COUNT(*) AS c FROM seq")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("failed replay leaked rows: COUNT = %d, want 1", res.Rows[0][0].Int())
	}
}
