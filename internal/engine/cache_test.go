package engine

import (
	"strconv"
	"strings"
	"testing"
)

const windowQ = `SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS s FROM seq ORDER BY pos`

// TestPlanCacheHitOnRepeat: an identical read statement is answered from the
// cache with the same result.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	first := mustExec(t, e, windowQ)
	h0 := e.PlanCacheStats().Hits
	second := mustExec(t, e, windowQ)
	if e.PlanCacheStats().Hits != h0+1 {
		t.Fatalf("repeat must hit the plan cache: %+v", e.PlanCacheStats())
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("cached result differs: %d vs %d rows", len(first.Rows), len(second.Rows))
	}
	for i := range first.Rows {
		if first.Rows[i][1].Float() != second.Rows[i][1].Float() {
			t.Fatalf("row %d differs: %v vs %v", i, first.Rows[i], second.Rows[i])
		}
	}
}

// TestPlanCacheInvalidatedByInsert: DML on a referenced table bumps its
// version, so the cached entry is discarded and the re-run sees the new row.
func TestPlanCacheInvalidatedByInsert(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return 1 })
	before := mustExec(t, e, `SELECT pos, val FROM seq ORDER BY pos`)
	mustExec(t, e, `SELECT pos, val FROM seq ORDER BY pos`) // warm the cache
	mustExec(t, e, `INSERT INTO seq (pos, val) VALUES (11, 1)`)
	after := mustExec(t, e, `SELECT pos, val FROM seq ORDER BY pos`)
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("stale cached result served after INSERT: %d rows, want %d",
			len(after.Rows), len(before.Rows)+1)
	}
	if e.PlanCacheStats().Invalidations == 0 {
		t.Fatalf("INSERT must invalidate the cached plan: %+v", e.PlanCacheStats())
	}
}

// TestPlanCacheInvalidatedByCreateView: CREATE MATERIALIZED VIEW bumps the
// schema version, so a query that previously planned natively is re-derived
// against the new view on its next run.
func TestPlanCacheInvalidatedByCreateView(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	res := mustExec(t, e, windowQ)
	if res.Derivation != nil {
		t.Fatal("no view exists yet; query must plan natively")
	}
	mustExec(t, e, windowQ) // cache the native plan
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`)
	res = mustExec(t, e, windowQ)
	if res.Derivation == nil {
		t.Fatal("after CREATE MATERIALIZED VIEW the cached native plan must be dropped and the query derived")
	}
}

// TestPlanCacheRefreshCycle: a cached derived plan follows the view through
// stale and refreshed states instead of serving stale answers.
func TestPlanCacheRefreshCycle(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return 1 })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, windowQ)
	if res.Derivation == nil {
		t.Fatal("query must derive from mv")
	}
	mustExec(t, e, windowQ) // cache the derived plan

	// Breaking density marks the view stale; the cached plan must not keep
	// answering from it.
	mustExec(t, e, `DELETE FROM seq WHERE pos = 10`)
	if _, err := e.Exec(windowQ); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale view must refuse the cached derived plan: %v", err)
	}

	// Restore density (REFRESH recomputes only over dense sequences), then
	// refresh: the cached plan must pick the view back up.
	mustExec(t, e, `INSERT INTO seq (pos, val) VALUES (10, 1)`)
	mustExec(t, e, `REFRESH MATERIALIZED VIEW mv`)
	res = mustExec(t, e, windowQ)
	if res.Derivation == nil {
		t.Fatal("after REFRESH the query must derive again")
	}
	// All 20 rows are back and every val is 1, so no window sums past 5.
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows after refresh, want 20", len(res.Rows))
	}
	for _, r := range res.Rows {
		if s := r[1].Float(); s < 1 || s > 5 {
			t.Fatalf("window sum %v out of range for all-ones data", s)
		}
	}
}

// TestPlanCacheDisabled: capacity zero turns caching off entirely.
func TestPlanCacheDisabled(t *testing.T) {
	e := newEngine(t)
	e.SetPlanCacheCapacity(0)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `SELECT pos, val FROM seq ORDER BY pos`)
	mustExec(t, e, `SELECT pos, val FROM seq ORDER BY pos`)
	st := e.PlanCacheStats()
	if st.Hits != 0 || st.Len != 0 {
		t.Fatalf("disabled cache must stay empty: %+v", st)
	}
}

// TestPlanCacheSkipsWrites: DML and DDL are never cached, so replaying the
// same INSERT text keeps inserting.
func TestPlanCacheSkipsWrites(t *testing.T) {
	e := newEngine(t)
	mustExec(t, e, `CREATE TABLE seq (pos INTEGER, val INTEGER)`)
	mustExec(t, e, `INSERT INTO seq (pos, val) VALUES (1, 1)`)
	mustExec(t, e, `INSERT INTO seq (pos, val) VALUES (1, 1)`)
	res := mustExec(t, e, `SELECT COUNT(pos) AS n FROM seq`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("identical INSERT text must execute twice, got count %v", res.Rows[0][0])
	}
}

// TestPlanCacheExplainUncached: EXPLAIN results are not cached (they carry
// no execStmt), and EXPLAIN text never leaks into query answers.
func TestPlanCacheExplainUncached(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	mustExec(t, e, `EXPLAIN SELECT pos, val FROM seq`)
	st := e.PlanCacheStats()
	if st.Len != 0 {
		t.Fatalf("EXPLAIN must not populate the cache: %+v", st)
	}
}

// BenchmarkExecCachedHit measures the steady-state hot path the server
// rides: repeated identical derived window queries.
func BenchmarkExecCachedHit(b *testing.B) {
	e := benchEngine(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(windowQ); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecUncached is the same workload with the cache disabled: full
// parse + derivation + execution on every call.
func BenchmarkExecUncached(b *testing.B) {
	e := benchEngine(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(windowQ); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngine(b *testing.B, cached bool) *Engine {
	b.Helper()
	e := New(DefaultOptions())
	if !cached {
		e.SetPlanCacheCapacity(0)
	}
	var sb strings.Builder
	sb.WriteString(`CREATE TABLE seq (pos INTEGER, val INTEGER); `)
	sb.WriteString(`INSERT INTO seq (pos, val) VALUES (1, 1)`)
	for i := 2; i <= 200; i++ {
		sb.WriteString(`, (`)
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(`, 1)`)
	}
	sb.WriteString(`; CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq;`)
	if _, err := e.ExecAll(sb.String()); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Exec(windowQ); err != nil {
		b.Fatal(err)
	}
	return e
}
