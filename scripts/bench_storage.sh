#!/usr/bin/env bash
# bench_storage.sh — paged heap storage scan grid and out-of-core sweep.
#
# Runs rfbench's storage experiment: a full-table scan timed per size
# (10k/100k/1M rows) in three modes — resident (paged storage off, the
# in-memory baseline), warm (paged, pool holds the table), cold (paged, pool
# starved to ~1/16 of the heap) — then all five reporting-function
# evaluation strategies over a 1M-row dataset under a 4 MiB budget. The JSON
# report lands in BENCH_storage.json at the repo root. The headline number
# is warm_over_resident: the warm-cache paged scan must stay within 15% of
# the in-memory baseline.
#
# Usage: scripts/bench_storage.sh [-quick]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

ARGS=()
if [[ "${1:-}" == "-quick" ]]; then
  ARGS+=(-quick)
fi

go run ./cmd/rfbench -exp storage -json "${ARGS[@]}" > "$ROOT/BENCH_storage.json"

echo "wrote $ROOT/BENCH_storage.json" >&2
python3 - "$ROOT/BENCH_storage.json" <<'PY' >&2
import json, sys
d = json.load(open(sys.argv[1]))
print("warm/resident scan ratio by size:", d.get("warm_over_resident"))
for r in d["scan_grid"]:
    print("  n=%-8d %-9s median %7.2fms  hits=%d misses=%d evictions=%d" % (
        r["n"], r["mode"], r["median_ms"], r["hits"], r["misses"], r["evictions"]))
print("out-of-core strategies (n=%d, budget=%d bytes):" % (
    d["workload"]["strategy_n"], d["workload"]["budget_bytes"]))
for s in d["strategies"]:
    print("  %-10s %9.1fms  evictions=%d writebacks=%d" % (
        s["strategy"], s["elapsed_ms"], s["evictions"], s["writebacks"]))
PY
