package exec

import (
	"fmt"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Expr.String() + " DESC"
	}
	return k.Expr.String()
}

// Sort materializes its input and emits it ordered by the keys (ascending by
// default, NULLs first; stable). Keys are normalized into memcomparable byte
// strings where the column types allow it, so the sort runs on bytes.Compare
// instead of per-key Compare calls; see keys.go for the fallback contract.
type Sort struct {
	Input Operator
	Keys  []SortKey
	// NoVectorize forces the Compare-based sort path; the zero value keeps
	// key normalization on.
	NoVectorize bool

	rows []sqltypes.Row
	pos  int
}

// Schema implements Operator.
func (s *Sort) Schema() *expr.Schema { return s.Input.Schema() }

// Open implements Operator.
func (s *Sort) Open() error {
	rows, err := Collect(s.Input)
	if err != nil {
		return err
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sc := getSortScratch()
	_, err = sortRowsByKeys(rows, idx, s.Keys, sc, !s.NoVectorize)
	putSortScratch(sc)
	if err != nil {
		return err
	}
	s.rows = make([]sqltypes.Row, len(rows))
	for i, j := range idx {
		s.rows[i] = rows[j]
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (sqltypes.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// Describe implements Operator.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	vec := ""
	if !s.NoVectorize {
		vec = " vectorized=true"
	}
	return "Sort " + joinTrunc(parts, 6) + vec
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Input} }

// UnionAll concatenates its inputs (which must have equal arity).
type UnionAll struct {
	Inputs []Operator
	cur    int
	opened bool
}

// Schema implements Operator: the schema of the first input, with types
// widened where inputs disagree.
func (u *UnionAll) Schema() *expr.Schema { return u.Inputs[0].Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.cur = 0
	u.opened = false
	return nil
}

// Next implements Operator.
func (u *UnionAll) Next() (sqltypes.Row, error) {
	for u.cur < len(u.Inputs) {
		if !u.opened {
			if err := u.Inputs[u.cur].Open(); err != nil {
				return nil, err
			}
			u.opened = true
		}
		row, err := u.Inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		if err := u.Inputs[u.cur].Close(); err != nil {
			return nil, err
		}
		u.cur++
		u.opened = false
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	if u.opened && u.cur < len(u.Inputs) {
		return u.Inputs[u.cur].Close()
	}
	return nil
}

// Describe implements Operator.
func (u *UnionAll) Describe() string { return fmt.Sprintf("UnionAll (%d inputs)", len(u.Inputs)) }

// Children implements Operator.
func (u *UnionAll) Children() []Operator { return u.Inputs }

// Distinct removes duplicate rows (hash-based; NULLs compare equal for
// distinctness, per SQL set semantics).
type Distinct struct {
	Input Operator
	seen  map[uint64][]sqltypes.Row
}

// Schema implements Operator.
func (d *Distinct) Schema() *expr.Schema { return d.Input.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[uint64][]sqltypes.Row)
	return d.Input.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (sqltypes.Row, error) {
	for {
		row, err := d.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		h := hashRow(row)
		dup := false
		for _, prev := range d.seen[h] {
			if rowsEqual(prev, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], row)
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}

// Describe implements Operator.
func (d *Distinct) Describe() string { return "Distinct" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Input} }

func hashRow(row sqltypes.Row) uint64 {
	h := uint64(1469598103934665603)
	for _, d := range row {
		h = h*1099511628211 ^ d.Hash()
	}
	return h
}

func rowsEqual(a, b sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
