package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// HeapEnv is the slice of spill.Env the pager needs: a factory for scratch
// files that the environment sweeps at startup and removes at Close. Heap
// files are ephemeral — durability comes from the WAL and snapshots, which
// rebuild every table on recovery — so they live in the same temp namespace
// as spill runs.
type HeapEnv interface {
	CreateHeap(tag string) (*os.File, error)
}

// heapFile is one table's page file. Page IDs are dense from 0; the file is
// append-allocated (pages are never freed individually — the file dies with
// the table's pager). The OS file is created lazily on the first real IO, so
// tables that never overflow the buffer pool never touch the disk.
type heapFile struct {
	pager *Pager
	tag   string

	nextPid atomic.Uint32 // next unallocated page id

	mu sync.Mutex // guards f creation and closing
	f  *os.File
}

// alloc reserves span consecutive page ids and returns the first. Pure
// counter arithmetic: the file itself grows only when a page is written.
func (h *heapFile) alloc(span int) uint32 {
	return h.nextPid.Add(uint32(span)) - uint32(span)
}

// ensure opens the backing OS file on first use.
func (h *heapFile) ensure() (*os.File, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f != nil {
		return h.f, nil
	}
	f, err := h.pager.env.CreateHeap(h.tag)
	if err != nil {
		return nil, err
	}
	h.f = f
	return f, nil
}

// writePage writes buf at page pid. Because freshly-allocated pages are
// created resident and dirty in the pool, the first write to any pid comes
// through eviction or flush — WriteAt extends the file with a hole-free
// prefix is not required; pread of an unwritten pid cannot happen (see
// readPage's invariant).
func (h *heapFile) writePage(pid uint32, buf []byte) error {
	f, err := h.ensure()
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, int64(pid)*int64(len(buf))); err != nil {
		return fmt.Errorf("storage: heap %s: write page %d: %w", h.tag, pid, err)
	}
	return nil
}

// readPage fills buf from page pid. Invariant: a page is only ever read
// after it has been evicted (written back) at least once — new pages are
// born resident in the pool and can only leave it via write-back — so a
// short read here is corruption, not a hole.
func (h *heapFile) readPage(pid uint32, buf []byte) error {
	h.mu.Lock()
	f := h.f
	h.mu.Unlock()
	if f == nil {
		return fmt.Errorf("storage: heap %s: read page %d before any write-back", h.tag, pid)
	}
	if _, err := f.ReadAt(buf, int64(pid)*int64(len(buf))); err != nil {
		return fmt.Errorf("storage: heap %s: read page %d: %w", h.tag, pid, err)
	}
	return nil
}

// close closes the OS file (the Env removes the path).
func (h *heapFile) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return nil
	}
	err := h.f.Close()
	h.f = nil
	return err
}
