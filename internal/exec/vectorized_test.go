package exec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// vecWindow builds a Window over (grp, pos, val) rows — PARTITION BY grp,
// ORDER BY pos (optionally DESC) — with one function per aggregate name, all
// over the val column (COUNT becomes COUNT(*)).
func vecWindow(t *testing.T, rows []sqltypes.Row, frame FrameSpec, desc, noVec bool, aggs ...string) *Window {
	t.Helper()
	schema := pwSchema()
	grpEx := mustCompile(t, "grp", schema)
	posEx := mustCompile(t, "pos", schema)
	valEx := mustCompile(t, "val", schema)
	funcs := make([]WindowFunc, len(aggs))
	for i, a := range aggs {
		arg := valEx
		if a == "COUNT" {
			arg = nil
		}
		funcs[i] = WindowFunc{Name: a, Arg: arg, Frame: frame, OutName: fmt.Sprintf("w%d", i)}
	}
	w := NewWindow(valuesOp(schema, rows...), []expr.Expr{grpEx},
		[]SortKey{{Expr: posEx, Desc: desc}}, funcs)
	w.NoVectorize = noVec
	return w
}

// vecValue draws one val datum for the given column shape.
func vecValue(rng *rand.Rand, shape string) sqltypes.Datum {
	if strings.Contains(shape, "null") && rng.Intn(4) == 0 {
		return sqltypes.NullDatum // NULLs mid-column force the boxed kernel
	}
	switch {
	case strings.HasPrefix(shape, "int"):
		return sqltypes.NewInt(int64(rng.Intn(200) - 100))
	case strings.HasPrefix(shape, "float"):
		return sqltypes.NewFloat((rng.Float64() - 0.5) * 100)
	default: // "mixed": the DECIMAL stand-in — Int/Float heterogeneous column
		if rng.Intn(2) == 0 {
			return sqltypes.NewInt(int64(rng.Intn(200) - 100))
		}
		return sqltypes.NewFloat((rng.Float64() - 0.5) * 100)
	}
}

// TestWindowTypedMatchesBoxed is the fast-path/fallback boundary oracle at
// the operator level: for every column shape (homogeneous INT and FLOAT —
// typed kernels; NULL-bearing and Int/Float-mixed — boxed fallback), every
// frame shape, and ASC/DESC ordering, the vectorized operator must produce
// exactly the rows of the forced-boxed operator.
func TestWindowTypedMatchesBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frames := []FrameSpec{
		DefaultFrame(true),
		DefaultFrame(false),
		{Start: FrameBound{Kind: BoundPreceding, Offset: 2}, End: FrameBound{Kind: BoundFollowing, Offset: 1}},
		{Start: FrameBound{Kind: BoundFollowing, Offset: 1}, End: FrameBound{Kind: BoundFollowing, Offset: 3}},
		// Far-preceding band: empty frames on every short partition.
		{Start: FrameBound{Kind: BoundPreceding, Offset: 9}, End: FrameBound{Kind: BoundPreceding, Offset: 4}},
	}
	aggs := []string{"SUM", "COUNT", "MIN", "MAX", "AVG"}
	for _, shape := range []string{"int", "float", "int-null", "float-null", "mixed", "mixed-null"} {
		t.Run(shape, func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				var rows []sqltypes.Row
				groups := 1 + rng.Intn(5)
				for g := 0; g < groups; g++ {
					n := rng.Intn(20)
					for i := 1; i <= n; i++ {
						rows = append(rows, sqltypes.Row{
							sqltypes.NewInt(int64(g)),
							sqltypes.NewInt(int64(i)),
							vecValue(rng, shape),
						})
					}
				}
				rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
				frame := frames[trial%len(frames)]
				desc := trial%2 == 1
				ctx := fmt.Sprintf("shape=%s trial=%d frame=%d desc=%v rows=%d",
					shape, trial, trial%len(frames), desc, len(rows))
				fast := mustCollect(t, vecWindow(t, rows, frame, desc, false, aggs...))
				slow := mustCollect(t, vecWindow(t, rows, frame, desc, true, aggs...))
				requireSameRows(t, slow, fast, ctx)
			}
		})
	}
}

// TestWindowVectorizedStats pins the eligibility contract through the stats
// counters: clean INT columns run typed kernels and normalized sorts; a NULL
// in the argument column falls back to the boxed kernel but keeps the
// normalized sort (NULL order keys still encode); NoVectorize forces both
// fallbacks.
func TestWindowVectorizedStats(t *testing.T) {
	clean := []sqltypes.Row{intRow(1, 1, 10), intRow(1, 2, 20), intRow(2, 1, 5), intRow(2, 2, 6)}
	withNull := []sqltypes.Row{
		intRow(1, 1, 10),
		{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NullDatum},
	}
	run := func(rows []sqltypes.Row, noVec bool) *WindowStats {
		st := &WindowStats{}
		w := vecWindow(t, rows, DefaultFrame(true), false, noVec, "SUM", "COUNT")
		w.Stats = st
		mustCollect(t, w)
		return st
	}
	st := run(clean, false)
	if st.TypedKernels.Load() == 0 || st.BoxedKernels.Load() != 0 {
		t.Fatalf("clean INT column: typed=%d boxed=%d", st.TypedKernels.Load(), st.BoxedKernels.Load())
	}
	if st.NormalizedSorts.Load() == 0 || st.ComparatorSorts.Load() != 0 {
		t.Fatalf("clean INT keys: normalized=%d comparator=%d", st.NormalizedSorts.Load(), st.ComparatorSorts.Load())
	}
	st = run(withNull, false)
	if st.BoxedKernels.Load() == 0 {
		t.Fatalf("NULL in arg column must use the boxed kernel (typed=%d boxed=%d)",
			st.TypedKernels.Load(), st.BoxedKernels.Load())
	}
	if st.TypedKernels.Load() == 0 {
		t.Fatalf("COUNT(*) stays typed even with NULL args (typed=%d)", st.TypedKernels.Load())
	}
	if st.NormalizedSorts.Load() == 0 {
		t.Fatalf("NULL-free order keys must still normalize")
	}
	st = run(clean, true)
	if st.TypedKernels.Load() != 0 || st.NormalizedSorts.Load() != 0 {
		t.Fatalf("NoVectorize must force boxed+comparator: typed=%d normalized=%d",
			st.TypedKernels.Load(), st.NormalizedSorts.Load())
	}
	if st.BoxedKernels.Load() == 0 || st.ComparatorSorts.Load() == 0 {
		t.Fatalf("NoVectorize counters missing: boxed=%d comparator=%d",
			st.BoxedKernels.Load(), st.ComparatorSorts.Load())
	}
}

// TestSortNormalizedMatchesComparator: the Sort operator must order random
// heterogeneous-typed multi-key inputs identically on both paths, including
// stable tie order (the payload column tracks input position) and Int/Float-
// mixed key columns, which silently use the comparator path even when
// vectorization is on.
func TestSortNormalizedMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := expr.NewSchema(
		expr.ColInfo{Name: "a", Type: sqltypes.Int},
		expr.ColInfo{Name: "b", Type: sqltypes.String},
		expr.ColInfo{Name: "c", Type: sqltypes.Float},
		expr.ColInfo{Name: "payload", Type: sqltypes.Int},
	)
	mkKey := func(col string, desc bool) SortKey {
		return SortKey{Expr: mustCompile(t, col, schema), Desc: desc}
	}
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(120)
		rows := make([]sqltypes.Row, n)
		for i := range rows {
			a := sqltypes.NewInt(int64(rng.Intn(5))) // heavy ties
			if rng.Intn(8) == 0 {
				a = sqltypes.NullDatum
			}
			b := sqltypes.NewString(string([]byte{byte(rng.Intn(3)), byte(rng.Intn(3))}))
			c := sqltypes.NewFloat(float64(rng.Intn(4)))
			if rng.Intn(3) == 0 {
				c = sqltypes.NewInt(int64(rng.Intn(4))) // mixed Int/Float key column
			}
			rows[i] = sqltypes.Row{a, b, c, sqltypes.NewInt(int64(i))}
		}
		keys := []SortKey{mkKey("a", trial%2 == 0), mkKey("b", trial%3 == 0), mkKey("c", trial%5 == 0)}
		fast := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys})
		slow := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys, NoVectorize: true})
		requireSameRows(t, slow, fast, fmt.Sprintf("trial %d n=%d", trial, n))
	}
}

// TestSortKeyTypeMismatchSurfaces is the satellite bug fix: a key column
// mixing incomparable types (INT and VARCHAR) must fail with a type error
// before any ordering happens — on both paths, in both Sort and Window. The
// old comparator recorded the error but finished sorting on garbage order.
func TestSortKeyTypeMismatchSurfaces(t *testing.T) {
	schema := pwSchema()
	rows := []sqltypes.Row{
		intRow(1, 1, 10),
		{sqltypes.NewInt(1), sqltypes.NewString("oops"), sqltypes.NewInt(20)}, // pos is a string
		intRow(1, 3, 30),
	}
	for _, noVec := range []bool{false, true} {
		s := &Sort{Input: valuesOp(schema, rows...), Keys: []SortKey{{Expr: mustCompile(t, "pos", schema)}}, NoVectorize: noVec}
		_, err := Collect(s)
		var tm *sqltypes.ErrTypeMismatch
		if !errors.As(err, &tm) {
			t.Fatalf("Sort noVec=%v: want ErrTypeMismatch, got %v", noVec, err)
		}
		w := vecWindow(t, rows, DefaultFrame(true), false, noVec, "SUM")
		if _, err := Collect(w); !errors.As(err, &tm) {
			t.Fatalf("Window noVec=%v: want ErrTypeMismatch, got %v", noVec, err)
		}
	}
}

// TestSortNaNKeyFallsBack: a NaN order key defeats the byte encoding (its
// Compare ordering is not total) but must not error and must match the
// comparator path exactly.
func TestSortNaNKeyFallsBack(t *testing.T) {
	schema := expr.NewSchema(
		expr.ColInfo{Name: "k", Type: sqltypes.Float},
		expr.ColInfo{Name: "payload", Type: sqltypes.Int},
	)
	rows := []sqltypes.Row{
		{sqltypes.NewFloat(2), sqltypes.NewInt(0)},
		{sqltypes.NewFloat(math.NaN()), sqltypes.NewInt(1)},
		{sqltypes.NewFloat(1), sqltypes.NewInt(2)},
		{sqltypes.NewFloat(math.NaN()), sqltypes.NewInt(3)},
	}
	keys := []SortKey{{Expr: mustCompile(t, "k", schema)}}
	fast := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys})
	slow := mustCollect(t, &Sort{Input: valuesOp(schema, rows...), Keys: keys, NoVectorize: true})
	requireSameRows(t, slow, fast, "NaN keys")
}

// TestWindowNegativeZeroMinMax: -0.0 and +0.0 are ties under Compare, so the
// typed MIN/MAX deque must pick the same representative (the later of the
// tied pair, matching the boxed deque's pop-on-tie) on both paths.
func TestWindowNegativeZeroMinMax(t *testing.T) {
	negZero := math.Copysign(0, -1)
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewFloat(negZero)},
		{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewFloat(0)},
		{sqltypes.NewInt(1), sqltypes.NewInt(3), sqltypes.NewFloat(negZero)},
	}
	frame := DefaultFrame(false)
	fast := mustCollect(t, vecWindow(t, rows, frame, false, false, "MIN", "MAX"))
	slow := mustCollect(t, vecWindow(t, rows, frame, false, true, "MIN", "MAX"))
	requireSameRows(t, slow, fast, "-0.0 ties")
}

// TestWindowEmptyPartitionScratch drives many tiny partitions through the
// pooled scratch with parallelism, checking buffer reuse across goroutines
// cannot bleed state between partitions.
func TestWindowEmptyPartitionScratch(t *testing.T) {
	var rows []sqltypes.Row
	for g := int64(0); g < 40; g++ {
		rows = append(rows, intRow(g, 1, g))
	}
	frame := DefaultFrame(true)
	seq := mustCollect(t, vecWindow(t, rows, frame, false, true, "SUM", "MIN", "AVG"))
	w := vecWindow(t, rows, frame, false, false, "SUM", "MIN", "AVG")
	w.Parallelism = 8
	par := mustCollect(t, w)
	requireSameRows(t, seq, par, "tiny partitions, pooled scratch, workers=8")
}
