package wal

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rfview/internal/client"
	"rfview/internal/engine"
)

// TestKillServerRecovery is the end-to-end crash harness: it builds the real
// rfserverd binary, loads it over TCP, SIGKILLs the process mid-write-stream,
// recovers the data directory in-process, and differentially compares every
// answer against an always-alive reference engine.
//
// Under -fsync always the durability contract is exact: every acknowledged
// statement survives the kill; unacknowledged ones may or may not. The test
// asserts acked ≤ recovered ≤ sent and then requires bit-identical answers
// for the recovered prefix.
func TestKillServerRecovery(t *testing.T) {
	runKillServerRecovery(t, nil, engine.DefaultOptions())
}

// TestKillServerRecoveryDeferred reruns the SIGKILL harness with deferred
// view maintenance and an aggressive background drain, so the kill can land
// mid-queue-drain: some acknowledged deltas are folded into the matseq
// backing table already, others still sit in the volatile queue. Recovery
// must converge regardless — replaying the WAL tail re-enqueues the lost
// deltas and the recovery-ending checkpoint drains them — and the recovered
// answers must match the uncrashed reference bit for bit.
func TestKillServerRecoveryDeferred(t *testing.T) {
	engOpts := engine.DefaultOptions()
	engOpts.ViewMaintenance = "deferred"
	runKillServerRecovery(t,
		[]string{"-view-maintenance", "deferred", "-maintenance-interval", "10ms"},
		engOpts)
}

// TestKillMidTransactionRecovery SIGKILLs the server while a client holds an
// OPEN transaction with acknowledged-but-uncommitted statements. A
// transaction reaches the WAL only as a commit record, written at COMMIT, so
// recovery must show every committed transaction in full and the open one
// not at all — no partially-committed effects, bit-compared against a
// reference engine that ran exactly the committed work.
func TestKillMidTransactionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level kill test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "rfserverd")
	build := exec.Command("go", "build", "-o", bin, "rfview/cmd/rfserverd")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rfserverd: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	srv := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-checkpoint-every", "25",
	)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "rfserverd listening on "); ok {
				addrc <- rest
				return
			}
		}
		addrc <- ""
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("server never printed its ready line")
	}
	if addr == "" {
		t.Fatal("server exited before becoming ready")
	}
	c, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mustWire := func(sql string) {
		t.Helper()
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	insertVal := func(pos int) int { return (pos*37)%100 - 50 }

	// Committed work: schema, base rows, and explicit multi-statement
	// transactions — every statement below is acknowledged AND committed.
	var committed []string
	addCommitted := func(sql string) {
		mustWire(sql)
		committed = append(committed, sql)
	}
	addCommitted(`CREATE TABLE seq (pos INTEGER, val INTEGER)`)
	addCommitted(`CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
	addCommitted(`CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	for i := 1; i <= 60; i++ {
		addCommitted(fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, insertVal(i)))
	}
	for k := 1; k <= 20; k++ {
		// The reference engine applies the payload statements auto-commit;
		// the effects are identical to the committed transaction's.
		mustWire(`BEGIN`)
		ins := fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, 100+k, k)
		upd := fmt.Sprintf(`UPDATE seq SET val = val + 1 WHERE pos = %d`, k)
		mustWire(ins)
		mustWire(upd)
		mustWire(`COMMIT`)
		committed = append(committed, ins, upd)
	}

	// The doomed transaction: acknowledged statements, no COMMIT — then kill.
	mustWire(`BEGIN`)
	mustWire(`INSERT INTO seq VALUES (999, 999)`)
	mustWire(`UPDATE seq SET val = 0 WHERE pos <= 30`)
	mustWire(`DELETE FROM seq WHERE pos = 40`)
	srv.Process.Kill()
	srv.Wait()
	exited = true

	// Recover in-process and hunt for partially-committed effects.
	mgr, err := Open(Options{Dir: dataDir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatalf("recovery after mid-txn SIGKILL: %v", err)
	}
	defer mgr.Close()
	rec := mgr.Engine()
	t.Logf("recovery: %+v", mgr.Recovery())
	res, err := rec.Exec(`SELECT COUNT(*) AS c FROM seq WHERE pos = 999`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("uncommitted INSERT survived the crash")
	}
	res, err = rec.Exec(`SELECT COUNT(*) AS c FROM seq WHERE pos = 40`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("uncommitted DELETE survived the crash")
	}

	reference := engine.New(engine.DefaultOptions())
	for _, sql := range committed {
		if _, err := reference.Exec(sql); err != nil {
			t.Fatalf("reference: %q: %v", sql, err)
		}
	}
	queries := []string{
		`SELECT pos, val FROM seq`,
		`SELECT pos, val FROM matseq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq WHERE pos <= 60`,
		`SELECT COUNT(*) AS c, SUM(val) AS s FROM seq`,
	}
	compareEnginesOn(t, rec, reference, queries, "after mid-txn SIGKILL")
}

// runKillServerRecovery is the harness body: serverFlags are appended to the
// rfserverd command line, engOpts configure both the in-process recovery and
// the reference engine.
func runKillServerRecovery(t *testing.T, serverFlags []string, engOpts engine.Options) {
	if testing.Short() {
		t.Skip("process-level kill test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "rfserverd")
	build := exec.Command("go", "build", "-o", bin, "rfview/cmd/rfserverd")
	build.Dir = "../.." // repo root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rfserverd: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-checkpoint-every", "40",
	}
	args = append(args, serverFlags...)
	srv := exec.Command(bin, args...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = nil
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			srv.Process.Kill()
			srv.Wait()
		}
	}()

	// The ready line carries the resolved port.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "rfserverd listening on "); ok {
				addrc <- rest
				return
			}
		}
		addrc <- ""
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("server never printed its ready line")
	}
	if addr == "" {
		t.Fatal("server exited before becoming ready")
	}

	c, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	schema := []string{
		`CREATE TABLE seq (pos INTEGER, val INTEGER)`,
		`CREATE UNIQUE INDEX seq_pk ON seq (pos)`,
		`CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
	}
	for _, sql := range schema {
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("schema: %v", err)
		}
	}

	// Stream appends and SIGKILL the server from a side goroutine once the
	// stream is past a couple of automatic checkpoints — the kill lands while
	// statements are in flight.
	insertVal := func(pos int) int { return (pos*37)%100 - 50 }
	const maxSend = 5000
	var acked atomic.Int64
	killed := make(chan struct{})
	sent := 0
	for i := 1; i <= maxSend; i++ {
		sent = i
		_, err := c.Exec(fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, insertVal(i)))
		if err != nil {
			break // the kill landed
		}
		if n := acked.Add(1); n == 150 {
			go func() {
				srv.Process.Kill()
				close(killed)
			}()
		}
	}
	select {
	case <-killed:
	case <-time.After(15 * time.Second):
		t.Fatal("insert stream ended before the kill fired")
	}
	srv.Wait()
	exited = true
	ackedN := int(acked.Load())
	if ackedN < 150 {
		t.Fatalf("only %d inserts acknowledged before the connection died", ackedN)
	}

	// Recover the data directory in-process.
	mgr, err := Open(Options{Dir: dataDir, Sync: SyncOff}, engOpts)
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer mgr.Close()
	if pending := mgr.Engine().Views.PendingTotal(); pending != 0 {
		t.Fatalf("recovery left %d deferred deltas queued; the recovery checkpoint must drain", pending)
	}
	res, err := mgr.Engine().Exec(`SELECT COUNT(*) AS c FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	recovered := int(res.Rows[0][0].Int())
	t.Logf("sent=%d acked=%d recovered=%d (recovery: %+v)", sent, ackedN, recovered, mgr.Recovery())
	if recovered < ackedN {
		t.Fatalf("durability violated: %d acknowledged inserts, only %d recovered", ackedN, recovered)
	}
	if recovered > sent {
		t.Fatalf("recovered %d rows but only %d inserts were ever sent", recovered, sent)
	}

	// Reference: a never-crashed engine running the schema plus exactly the
	// recovered prefix of the insert stream.
	reference := engine.New(engOpts)
	for _, sql := range schema {
		if _, err := reference.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= recovered; i++ {
		if _, err := reference.Exec(fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, insertVal(i))); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 5 PRECEDING AND 4 FOLLOWING) AS w FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS w FROM seq`,
		`SELECT pos, val FROM seq`,
		`SELECT pos, val FROM matseq`,
		`SELECT COUNT(*) AS c, SUM(val) AS s FROM seq`,
	}
	compareEnginesOn(t, mgr.Engine(), reference, queries, "after SIGKILL")
}
