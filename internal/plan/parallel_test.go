package plan

import (
	"runtime"
	"strings"
	"testing"

	"rfview/internal/exec"
)

const windowSQL = `SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`

// TestWindowParallelismInPlan: the configured knob is stamped onto planned
// Window operators and rendered by EXPLAIN as parallel=N.
func TestWindowParallelismInPlan(t *testing.T) {
	cat := newTestCatalog(t, false)

	opts := DefaultOptions()
	opts.WindowParallelism = 3
	op := planQuery(t, cat, opts, windowSQL)
	if !strings.Contains(exec.FormatPlan(op), "parallel=3") {
		t.Fatalf("EXPLAIN misses parallel=3:\n%s", exec.FormatPlan(op))
	}

	// Explicitly sequential: no parallel marker.
	opts.WindowParallelism = 1
	op = planQuery(t, cat, opts, windowSQL)
	if strings.Contains(exec.FormatPlan(op), "parallel=") {
		t.Fatalf("sequential plan must not advertise parallelism:\n%s", exec.FormatPlan(op))
	}
}

// TestWindowParallelismDefaultsToGOMAXPROCS: 0 resolves at plan time.
func TestWindowParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), windowSQL)
	want := runtime.GOMAXPROCS(0)
	found := false
	var walk func(o exec.Operator)
	walk = func(o exec.Operator) {
		if w, ok := o.(*exec.Window); ok {
			found = true
			if w.Parallelism != want {
				t.Fatalf("default parallelism = %d, want GOMAXPROCS = %d", w.Parallelism, want)
			}
		}
		for _, c := range o.Children() {
			walk(c)
		}
	}
	walk(op)
	if !found {
		t.Fatalf("no Window operator in plan:\n%s", exec.FormatPlan(op))
	}
}
