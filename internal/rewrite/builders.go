package rewrite

import (
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// Small AST construction helpers: the rewriter assembles the relational
// operator patterns of Figs. 2, 4, 10 and 13 as parse trees (rather than SQL
// strings), so the result can be planned directly and rendered for the
// golden-pattern tests.

func col(table, name string) *sqlparser.ColumnRef {
	return &sqlparser.ColumnRef{Table: table, Name: name}
}

func intLit(v int64) *sqlparser.Literal {
	return &sqlparser.Literal{Val: sqltypes.NewInt(v)}
}

func eq(l, r sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.ComparisonExpr{Op: "=", Left: l, Right: r}
}

func gt(l, r sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.ComparisonExpr{Op: ">", Left: l, Right: r}
}

func ge(l, r sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.ComparisonExpr{Op: ">=", Left: l, Right: r}
}

func and(l, r sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.AndExpr{Left: l, Right: r}
}

func or(exprs ...sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparser.OrExpr{Left: out, Right: e}
		}
	}
	return out
}

// plusConst renders e+c, e-c, or e alone for c == 0, keeping the generated
// SQL close to the paper's notation.
func plusConst(e sqlparser.Expr, c int64) sqlparser.Expr {
	switch {
	case c == 0:
		return e
	case c > 0:
		return &sqlparser.BinaryExpr{Op: "+", Left: e, Right: intLit(c)}
	default:
		return &sqlparser.BinaryExpr{Op: "-", Left: e, Right: intLit(-c)}
	}
}

// modOf builds MOD(e + shift, m); shift folds into the operand.
func modOf(e sqlparser.Expr, shift, m int64) sqlparser.Expr {
	return &sqlparser.FuncExpr{Name: "MOD", Args: []sqlparser.Expr{plusConst(e, shift), intLit(m)}}
}

func sumOf(arg sqlparser.Expr) *sqlparser.FuncExpr {
	return &sqlparser.FuncExpr{Name: "SUM", Args: []sqlparser.Expr{arg}}
}

func negOf(e sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.BinaryExpr{Op: "*", Left: intLit(-1), Right: e}
}

func coalesce(args ...sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.FuncExpr{Name: "COALESCE", Args: args}
}

// caseSign builds the Fig. 10/13 CASE that adds matching rows and subtracts
// the compensation rows: CASE WHEN cond THEN val ELSE (-1)*val END.
func caseSign(cond sqlparser.Expr, val sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.CaseExpr{
		Whens: []sqlparser.When{{Cond: cond, Then: val}},
		Else:  negOf(val),
	}
}

func tbl(name, alias string) *sqlparser.TableName {
	return &sqlparser.TableName{Name: name, Alias: alias}
}

func crossJoin(l, r sqlparser.TableExpr) sqlparser.TableExpr {
	return &sqlparser.Join{Left: l, Right: r, Type: sqlparser.CrossJoin}
}

func leftJoin(l, r sqlparser.TableExpr, on sqlparser.Expr) sqlparser.TableExpr {
	return &sqlparser.Join{Left: l, Right: r, Type: sqlparser.LeftOuterJoin, On: on}
}

func selItem(e sqlparser.Expr, alias string) sqlparser.SelectItem {
	return sqlparser.SelectItem{Expr: e, Alias: alias}
}

func between(e sqlparser.Expr, lo, hi sqlparser.Expr) sqlparser.Expr {
	return &sqlparser.BetweenExpr{Expr: e, From: lo, To: hi}
}

// sqltypesTrue is the TRUE literal used by partitioned body filters.
var sqltypesTrue = sqltypes.NewBool(true)
