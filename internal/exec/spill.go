package exec

import (
	"math"

	"rfview/internal/spill"
	"rfview/internal/sqltypes"
)

// This file adapts the executor's ordering operators to the out-of-core
// layer (internal/spill). Both adapters stream rows through a spill.Sorter
// keyed by the same memcomparable encoding the in-memory fast path sorts on,
// so external and in-memory results are bit-identical: equal key bytes merge
// back in insertion order, matching the stable in-memory sort.
//
// The encoding's fallback contract carries over unchanged. sortRowsByKeys
// validates key columns over the whole row set before sorting; the streaming
// path validates incrementally and reaches the same verdicts — incomparable
// key types are an error, an Int/Float mix or a NaN defeats the encoding.
// The only difference is that a streaming run may discover the defeat after
// rows were already spilled; the caller then abandons the external sort
// (releasing its runs and budget) and re-sorts in memory through the
// comparator path, which still holds every input row.

// keyStreamer incrementally encodes rows' sort keys into one concatenated
// memcomparable byte string per row, validating key column types as it goes
// with the same rules as sortRowsByKeys.
type keyStreamer struct {
	keys  []SortKey
	types []sqltypes.Type // first non-NULL type seen per key column
	vals  []sqltypes.Datum
	buf   []byte
}

func newKeyStreamer(keys []SortKey) *keyStreamer {
	return &keyStreamer{
		keys:  keys,
		types: make([]sqltypes.Type, len(keys)),
		vals:  make([]sqltypes.Datum, len(keys)),
	}
}

// encode evaluates the keys of row and returns their concatenated encoding,
// valid until the next call. ok=false (with a nil error) means this row
// defeats the encoding — an Int/Float mix with an earlier row, or a NaN —
// and the caller must fall back to the comparator path. Incomparable types
// return the same error the in-memory validation raises.
func (ks *keyStreamer) encode(row sqltypes.Row) (key []byte, ok bool, err error) {
	ks.buf = ks.buf[:0]
	for ki := range ks.keys {
		v, err := ks.keys[ki].Expr.Eval(row)
		if err != nil {
			return nil, false, err
		}
		ks.vals[ki] = v
		t := v.Typ()
		if t != sqltypes.Null {
			if t == sqltypes.Float && math.IsNaN(v.Float()) {
				return nil, false, nil
			}
			switch first := ks.types[ki]; {
			case first == sqltypes.Null:
				ks.types[ki] = t
			case first != t:
				if !sqltypes.Comparable(first, t) {
					return nil, false, &sqltypes.ErrTypeMismatch{Op: "compare", Left: first, Right: t}
				}
				return nil, false, nil // Int/Float mix
			}
		}
	}
	for ki := range ks.keys {
		ks.buf = sqltypes.EncodeKeyNulls(ks.buf, ks.vals[ki], ks.keys[ki].Desc, ks.keys[ki].nullsLast())
	}
	return ks.buf, true, nil
}

// spillEligible gates the external path: it needs an enabled config, keys to
// order by, the normalized (vectorized) path on, and at least two rows.
func spillEligible(cfg *spill.Config, keys []SortKey, noVectorize bool, n int) bool {
	return cfg.Enabled() && len(keys) > 0 && !noVectorize && n >= 2
}
