package bench

import (
	"strings"
	"testing"

	"rfview/internal/engine"
)

// TestTable1HarnessSmall runs the Table 1 experiment end-to-end at toy sizes
// with result checking on — the harness itself is under test here, not the
// timings.
func TestTable1HarnessSmall(t *testing.T) {
	rows, err := RunTable1([]int{50, 120}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].N != 50 || rows[1].N != 120 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.NativeNoIndex <= 0 || r.SelfJoinNoIndex <= 0 || r.NativeIndex <= 0 || r.SelfJoinIndex <= 0 {
			t.Fatalf("missing measurement: %+v", r)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "120") {
		t.Fatalf("format output:\n%s", out)
	}
}

// TestTable2HarnessSmall runs the Table 2 experiment end-to-end at toy
// sizes, verifying all four strategies against native evaluation.
func TestTable2HarnessSmall(t *testing.T) {
	rows, err := RunTable2([]int{60, 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.MaxOADisjunctive <= 0 || r.MaxOAUnion <= 0 || r.MinOADisjunctive <= 0 || r.MinOAUnion <= 0 {
			t.Fatalf("missing measurement: %+v", r)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "MaxO Algorithm") || !strings.Contains(out, "MinO Algorithm") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestLoadCreditCard(t *testing.T) {
	e := engine.New(engine.DefaultOptions())
	cfg := CreditCardConfig{Customers: 5, Locations: 3, Transactions: 120, Seed: 1}
	if err := LoadCreditCard(e, cfg); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SELECT COUNT(*) AS c FROM c_transactions`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 120 {
		t.Fatalf("transactions = %v", res.Rows[0][0])
	}
	res, err = e.Exec(`SELECT COUNT(*) AS c FROM l_locations`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("locations = %v", res.Rows[0][0])
	}
	// Join + window over the generated data parses and runs.
	if _, err := e.Exec(`SELECT c_date, SUM(c_transaction) OVER (ORDER BY c_date ROWS UNBOUNDED PRECEDING) AS c
	  FROM c_transactions, l_locations WHERE c_locid = l_locid AND c_custid = 1`); err != nil {
		t.Fatal(err)
	}
}

func TestSameSeries(t *testing.T) {
	e := engine.New(engine.DefaultOptions())
	if err := LoadSequenceTable(e, 30, 3); err != nil {
		t.Fatal(err)
	}
	a, err := e.Exec(`SELECT pos, val FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Exec(`SELECT pos, val FROM seq ORDER BY pos DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSeries(a.Rows, b.Rows) {
		t.Fatal("order must not matter")
	}
	c, err := e.Exec(`SELECT pos, val + 1 FROM seq`)
	if err != nil {
		t.Fatal(err)
	}
	if sameSeries(a.Rows, c.Rows) {
		t.Fatal("different values must not compare equal")
	}
}

func TestPatternsReport(t *testing.T) {
	report, err := PatternsReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range []string{
		"Fig. 2", "Fig. 4", "Fig. 10", "Fig. 13",
		"IndexNestedLoopJoin", // Fig. 2/4 with the pk index
		"NestedLoopJoin",      // the disjunctive forms
		"HashJoin",            // the union branches
		"UNION ALL",
	} {
		if !strings.Contains(report, sig) {
			t.Fatalf("patterns report missing %q:\n%s", sig, report)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	t1 := []Table1Row{{N: 100, NativeNoIndex: 1000, SelfJoinNoIndex: 2000, NativeIndex: 3000, SelfJoinIndex: 4000}}
	csv := CSVTable1(t1)
	if !strings.Contains(csv, "n,native_noindex_us") {
		t.Fatalf("CSVTable1 header missing: %q", csv)
	}
	if !strings.Contains(csv, "100,1,2,3,4") {
		t.Fatalf("CSVTable1 = %q", csv)
	}
	t2 := []Table2Row{{N: 50, MaxOADisjunctive: 5000, MaxOAUnion: 6000, MinOADisjunctive: 7000, MinOAUnion: 8000}}
	csv = CSVTable2(t2)
	if !strings.Contains(csv, "50,5,6,7,8") {
		t.Fatalf("CSVTable2 = %q", csv)
	}
}

func TestMaintenanceHarness(t *testing.T) {
	rows, err := RunMaintenance([]int{300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Incremental <= 0 || rows[0].FullRefresh <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	out := FormatMaintenance(rows)
	if !strings.Contains(out, "incremental/op") || !strings.Contains(out, "300") {
		t.Fatalf("format:\n%s", out)
	}
}
