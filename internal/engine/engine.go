// Package engine is the top of the rfview stack: it parses SQL, routes DDL
// and DML, keeps materialized views maintained, applies the paper's rewrites
// (derivation from materialized sequence views, self-join simulation of
// reporting functions), plans, and executes.
//
// The Options knobs map one-to-one onto the paper's evaluation axes:
//
//	NativeWindow   — Table 1: reporting functionality inside the engine
//	                 vs. the Fig. 2 self-join simulation.
//	UseIndexes     — Table 1: with / without an index on the position column.
//	UseMatViews,
//	Strategy, Form — Table 2: MaxOA vs. MinOA, disjunctive vs. UNION form.
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rferrors "rfview/errors"
	"rfview/internal/catalog"
	"rfview/internal/exec"
	"rfview/internal/metrics"
	"rfview/internal/mview"
	"rfview/internal/plan"
	"rfview/internal/qcache"
	"rfview/internal/rewrite"
	"rfview/internal/spill"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// Options configures an engine.
type Options struct {
	// NativeWindow enables the Window operator; off forces the Fig. 2
	// self-join rewrite for reporting-function queries.
	NativeWindow bool
	// UseIndexes enables index nested-loop joins.
	UseIndexes bool
	// UseHashJoin enables hash joins.
	UseHashJoin bool
	// UseMatViews enables answering window queries from materialized
	// sequence views (§3–§5 derivation rewrites).
	UseMatViews bool
	// Strategy picks the derivation algorithm (auto / MaxOA / MinOA).
	Strategy rewrite.Strategy
	// Form picks the relational rendering (disjunctive / union).
	Form rewrite.Form
	// DerivationMaxRows caps non-exact derivation rewrites: views whose base
	// exceeds this many rows answer only identically-windowed queries, and
	// everything else recomputes natively. This operationalizes the paper's
	// §7 finding that the relational derivation patterns scale superlinearly
	// and are "not advisable for large sequences" — derive when the view is
	// small or the windows match, recompute otherwise. 0 disables the cap
	// (always derive when a view matches, the paper's §3 caching setting
	// where raw data may not be reachable at all).
	DerivationMaxRows int
	// WindowParallelism bounds the worker pool the Window operator uses to
	// evaluate independent partitions (the §6 partitioning reduction lemma)
	// concurrently: 0 resolves to GOMAXPROCS, 1 forces sequential
	// evaluation, N > 1 allows up to N workers. The knob also governs mview
	// full refreshes, which re-execute the view query through the same
	// planner.
	WindowParallelism int
	// DisableVectorized switches off the executor's typed columnar fast
	// path (memcomparable key-normalized sorts and typed window kernels),
	// forcing the boxed Datum path. Results are identical either way; the
	// knob exists for measurement and as an escape hatch.
	DisableVectorized bool
	// DisableSharedSort switches off the shared-sort multi-window planner
	// pass: every Window operator of a multi-OVER query sorts internally
	// instead of stacking over one shared Sort per ordering-compatible spec
	// class. Results are identical either way; the knob exists for the
	// differential oracle and for A/B benchmarks.
	DisableSharedSort bool
	// MemoryBudgetBytes caps executor working memory: Sort buffers and
	// window partition orderings charge a shared spill.Budget, and an
	// operator whose charge would exceed the cap goes external — spilling
	// memcomparable sort runs to disk and merging them back (internal/spill).
	// 0 means unlimited (nothing ever spills); the RFVIEW_TEST_MEM_BUDGET
	// environment variable supplies a default when unset, so the whole test
	// suite can be forced through the spill path.
	MemoryBudgetBytes int64
	// SpillDir is where spill run files live; empty means a private
	// directory under os.TempDir. Servers point it at <data-dir>/tmp so
	// stale runs from a crashed process are swept on restart.
	SpillDir string
	// ViewMaintenance selects how base-table DML reaches materialized
	// sequence views: "eager" (the default, also the empty string) folds the
	// §2.3 delta into each view inside the write itself; "deferred" queues
	// per-view deltas and applies them before the next read that could
	// observe the view (read-repair), on background ticks, and at WAL
	// checkpoints; "off" marks views stale on every base-table write, leaving
	// REFRESH as the only repair. The RFVIEW_TEST_VIEW_MAINTENANCE
	// environment variable supplies a default when unset, so the whole test
	// suite can be forced through the deferred path.
	ViewMaintenance string
	// PageSize is the slotted-page size of paged heap storage in bytes;
	// 0 means storage.DefaultPageSize (8 KiB). Values are clamped to
	// [storage.MinPageSize, storage.MaxPageSize].
	PageSize int
	// PageCacheBytes is a hard cap on buffer-pool residency, independent of
	// the shared memory budget; 0 means budget-governed only. The
	// RFVIEW_TEST_PAGE_CACHE environment variable supplies a default when
	// unset, so the whole suite can be forced through a starved page cache.
	PageCacheBytes int64
	// DisablePagedStorage keeps every table's rows resident in memory, the
	// pre-paging layout. The knob exists for the differential oracle's
	// reference engines and for A/B benchmarks of the paged path.
	DisablePagedStorage bool
}

// DefaultOptions enables every feature with automatic strategy selection.
func DefaultOptions() Options {
	return Options{
		NativeWindow: true, UseIndexes: true, UseHashJoin: true,
		UseMatViews: true, Strategy: rewrite.StrategyAuto, Form: rewrite.FormDisjunctive,
	}
}

// Engine executes SQL statements.
//
// An Engine is safe for concurrent use. Locking discipline: read statements
// (SELECT, UNION, EXPLAIN) run under a shared lock and may execute
// concurrently — including view-derived MaxOA/MinOA rewrites — while DML,
// DDL, and REFRESH MATERIALIZED VIEW take the exclusive lock, so every read
// observes a consistent pre- or post-write state. The catalog and the view
// manager carry their own finer-grained locks for direct library use, but
// the engine-level RWMutex is what makes multi-statement read plans (match →
// derive → plan → execute) atomic with respect to writers.
type Engine struct {
	Cat   *catalog.Catalog
	Views *mview.Manager
	Opts  Options

	// mu is the engine-level reader/writer lock described above. Since the
	// MVCC rework it serializes commits and DDL against each other; read
	// statements normally never touch it (see readStable in txn.go) and fall
	// back to the shared mode only after repeated torn optimistic attempts.
	mu sync.RWMutex
	// commitSeq is the seqlock guarding non-row-versioned read state (view
	// freshness, table version counters, schema); odd while a commit or DDL
	// publication is in flight. See txn.go.
	commitSeq atomic.Uint64
	// txnIDs mints transaction identifiers; these stamp pending row versions
	// and must never be zero (zero means "no owner").
	txnIDs atomic.Uint64
	// Transaction counters, exposed as metrics and by TxnStats().
	txnBegins, txnCommits, txnRollbacks, txnConflicts atomic.Int64
	// plans caches parse/match/derive work keyed by SQL text; see cache.go.
	plans *qcache.Cache[*cachedPlan]

	// logWrite, when set, receives the canonical SQL of every mutating
	// statement *before* it applies, under the exclusive lock — the
	// write-ahead discipline of the durability subsystem. A logWrite error
	// refuses the statement: nothing may change state that was not first
	// logged. postWrite runs after the apply attempt (success or failure),
	// still under the exclusive lock; the durability subsystem uses it to
	// trigger checkpoints at record-count boundaries.
	logWrite  func(sql string) error
	postWrite func()

	// maintMode is Opts.ViewMaintenance parsed once at construction; the
	// deferred-drain fast path on every read statement checks it without
	// re-parsing the string.
	maintMode mview.Mode

	// reg/met expose the engine's operational counters; see metrics.go.
	// winStats aggregates Window-operator parallelism across all queries.
	reg      *metrics.Registry
	met      *engineMetrics
	winStats *exec.WindowStats

	// spillCfg carries the out-of-core execution state shared by every
	// operator this engine plans: the memory budget, the run-file directory,
	// and the spill counters. Always non-nil; with no budget configured it is
	// simply never enabled. spillEnv is owned here so Close can remove run
	// files.
	spillCfg *spill.Config
	spillEnv *spill.Env

	// pager owns paged heap storage: the buffer pool and every table's heap
	// file. nil when DisablePagedStorage keeps rows resident.
	pager *storage.Pager

	// Slow-query log configuration. These live outside Options because
	// Options must stay comparable (the plan cache validates entries with
	// `e.Opts != p.opts`) and a func field would break that.
	slowMu     sync.Mutex
	slowThresh time.Duration
	slowSink   func(SlowQuery)
}

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     []sqltypes.Row
	Affected int
	// Plan carries the EXPLAIN rendering when requested.
	Plan string
	// Rewritten carries the SQL a rewrite produced, for EXPLAIN and tests.
	Rewritten string
	// Derivation records a §4/§5 view-derivation rewrite, when one fired.
	Derivation *rewrite.Derivation
	// Analyzed carries the annotated operator tree (per-node row counts and
	// wall time) when the statement ran instrumented: EXPLAIN ANALYZE,
	// WithAnalyze, or an armed slow-query log.
	Analyzed string
	// CacheHit reports that the plan cache answered this statement.
	CacheHit bool
	// MaintenanceDrained is the number of deferred view deltas the
	// read-repair drain applied immediately before this statement ran.
	MaintenanceDrained int

	// execStmt is the statement that was actually planned (post-derivation,
	// pre-self-join-fallback); the plan cache replans from it on a hit.
	execStmt sqlparser.SelectStatement
	// planText is the uninstrumented plan rendering captured at plan time,
	// retained by the plan cache so EXPLAIN can replay it on a hit.
	planText string
}

// ExecOption adjusts a single ExecContext call.
type ExecOption func(*execConfig)

type execConfig struct {
	// analyze requests the annotated plan in Result.Analyzed and bypasses
	// result-row reuse (the rows must actually flow to be counted).
	analyze bool
	// trace instruments the operator tree; implied by analyze and by an
	// armed slow-query log.
	trace bool
	// drained is the deferred-delta count the read-repair drain applied
	// before this statement; it rides into Result.MaintenanceDrained.
	drained int
	// tx is the transaction this statement runs inside: the enclosing
	// explicit transaction, or the statement's own auto-commit transaction
	// for DML. nil for auto-commit reads.
	tx *txn.Txn
	// snap resolves the snapshot every scan and index probe of this
	// statement reads at. Set by the read path (readStable) or derived from
	// tx; planSelect fills in a latest-committed default when unset.
	snap func() txn.Snapshot
}

// WithAnalyze executes the statement instrumented and fills Result.Analyzed
// with the per-operator row counts and timings, as EXPLAIN ANALYZE does.
func WithAnalyze() ExecOption { return func(c *execConfig) { c.analyze = true } }

// New builds an engine with the given options.
func New(opts Options) *Engine {
	if opts.MemoryBudgetBytes == 0 {
		// Test knob: force a budget (and thus the spill path) suite-wide.
		if env := os.Getenv("RFVIEW_TEST_MEM_BUDGET"); env != "" {
			if n, err := spill.ParseBytes(env); err == nil {
				opts.MemoryBudgetBytes = n
			}
		}
	}
	if opts.ViewMaintenance == "" {
		// Test knob: force every engine into one maintenance mode suite-wide.
		opts.ViewMaintenance = os.Getenv("RFVIEW_TEST_VIEW_MAINTENANCE")
	}
	if opts.PageCacheBytes == 0 {
		// Test knob: starve every engine's page cache suite-wide.
		if env := os.Getenv("RFVIEW_TEST_PAGE_CACHE"); env != "" {
			if n, err := spill.ParseBytes(env); err == nil {
				opts.PageCacheBytes = n
			}
		}
	}
	// Commands validate the flag with mview.ParseMode and fail fast; a
	// library caller's unknown string degrades to the eager default.
	maintMode, _ := mview.ParseMode(opts.ViewMaintenance)
	e := &Engine{Cat: catalog.New(), Opts: opts, maintMode: maintMode, plans: qcache.New[*cachedPlan](DefaultPlanCacheCapacity)}
	e.spillEnv = spill.NewEnv(opts.SpillDir)
	e.spillCfg = &spill.Config{
		Budget: spill.NewBudget(opts.MemoryBudgetBytes),
		Env:    e.spillEnv,
		Stats:  &spill.Stats{},
	}
	if !opts.DisablePagedStorage {
		// Page residency charges the same budget as sort/window spilling, so
		// -mem-budget is the one knob that governs total executor memory.
		e.pager = storage.NewPager(storage.PagerConfig{
			PageSize: opts.PageSize,
			CapBytes: opts.PageCacheBytes,
			Budget:   e.spillCfg.Budget,
			Env:      e.spillEnv,
		})
		e.Cat.SetPager(e.pager)
	}
	e.Views = mview.NewManager(e.Cat, func(ctx context.Context, stmt sqlparser.SelectStatement) ([]string, []sqltypes.Row, error) {
		res, err := e.execSelect(ctx, stmt, execConfig{})
		if err != nil {
			return nil, nil, err
		}
		return res.Columns, res.Rows, nil
	})
	e.Views.SetMode(maintMode)
	e.initMetrics()
	return e
}

// MaintenanceMode returns the engine's view-maintenance mode.
func (e *Engine) MaintenanceMode() mview.Mode { return e.maintMode }

// DrainMaintenance applies every queued deferred view delta now, under the
// exclusive lock, and reports how many were applied. Servers call it on
// background ticks; tests use it to force convergence without issuing a read.
// It is a no-op outside deferred mode (nothing is ever queued).
func (e *Engine) DrainMaintenance() int {
	if e.Views.PendingTotal() == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drainLocked()
}

// DrainMaintenanceLocked is DrainMaintenance for callers that already hold
// the exclusive engine lock — the WAL checkpoint, which runs under Quiesce,
// drains queued deltas before capturing a snapshot.
func (e *Engine) DrainMaintenanceLocked() int {
	if e.Views.PendingTotal() == 0 {
		return 0
	}
	return e.drainLocked()
}

// drainLocked applies queued deferred deltas inside an internal transaction,
// so their backing-table patches publish atomically. Callers hold the
// exclusive lock. Internal transactions write no commit record — replaying
// the DML records that enqueued the deltas re-derives them.
func (e *Engine) drainLocked() int {
	tx := e.newTxn(false)
	n := e.Views.DrainTx(tx)
	e.commitTxnLocked(tx, false) // cannot fail: no log write
	return n
}

// drainIfPending is the read-repair half of deferred maintenance: called
// before a read statement takes the shared lock (and before the plan cache is
// consulted — applying deltas bumps backing-table versions, which is exactly
// what invalidates cached results that predate the queued DML). The common
// no-pending case is one atomic load. Between the drain and the read's shared
// lock a concurrent writer may enqueue fresh deltas; deferred mode promises
// each read observes the deltas queued before it began, not a serializable
// schedule.
func (e *Engine) drainIfPending() int {
	if e.maintMode != mview.ModeDeferred || e.Views.PendingTotal() == 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drainLocked()
}

// leadingRead reports whether sql's first keyword starts a read statement
// (SELECT, including UNIONs, or EXPLAIN) without parsing. Used only to decide
// whether to drain deferred maintenance before consulting the plan cache;
// ExecStmtContext re-checks on the parsed statement.
func leadingRead(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r' || sql[i] == ';' || sql[i] == '(') {
		i++
	}
	j := i
	for j < len(sql) && ((sql[j] >= 'a' && sql[j] <= 'z') || (sql[j] >= 'A' && sql[j] <= 'Z')) {
		j++
	}
	switch strings.ToUpper(sql[i:j]) {
	case "SELECT", "EXPLAIN":
		return true
	}
	return false
}

// Exec parses and executes a single statement without a deadline.
//
// Deprecated: new code should use ExecContext, which supports cancellation
// and per-call options. Exec remains for compatibility and is equivalent to
// ExecContext(context.Background(), sql).
func (e *Engine) Exec(sql string) (*Result, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes a single statement. For queries it
// consults the plan cache first: a valid cached entry skips parse, view
// matching, and derivation entirely. Cancelling ctx aborts row production at
// the next operator boundary and returns an error matching
// rfview/errors.ErrCancelled; the engine's state is untouched by a cancelled
// read (writes are not interruptible once logged).
func (e *Engine) ExecContext(ctx context.Context, sql string, opts ...ExecOption) (*Result, error) {
	var cfg execConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.trace = cfg.analyze || e.slowLogArmed()
	start := time.Now()
	res, err := e.exec(ctx, sql, cfg)
	e.observeQuery(sql, res, err, time.Since(start))
	return res, err
}

func (e *Engine) exec(ctx context.Context, sql string, cfg execConfig) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, rferrors.Wrap(rferrors.CodeCancelled, err)
	}
	if cfg.tx != nil {
		return e.execInTxn(ctx, sql, cfg)
	}
	if leadingRead(sql) {
		cfg.drained = e.drainIfPending()
	}
	if res, err, ok := e.execCached(ctx, sql, cfg); ok {
		return res, err
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, rferrors.Wrap(rferrors.CodeParse, err)
	}
	if isReadStmt(stmt) {
		// Lock-free: execute optimistically against the seqlock, and cache
		// the plan only after the attempt proved stable — a torn attempt
		// could otherwise pair pre-commit rows with post-commit versions.
		var ent *cachedPlan
		res, err := e.readStable(cfg, func(c execConfig) (*Result, error) {
			ent = nil
			r, err := e.execStmtLocked(ctx, stmt, c)
			if err == nil {
				ent = e.preparePlan(stmt, r)
			}
			return r, err
		})
		if err == nil && ent != nil {
			e.putPlan(sql, stmt, ent)
		}
		return res, err
	}
	lockStart := time.Now()
	e.mu.Lock()
	e.met.commitWait.Observe(time.Since(lockStart).Seconds())
	defer e.mu.Unlock()
	return e.execWriteLocked(ctx, stmt)
}

// execInTxn runs one statement inside an explicit transaction: reads at the
// transaction's fixed snapshot without any engine lock (no drain, no plan
// cache — both track latest-committed state, not the snapshot), DML through
// the lock-free pending-version path.
func (e *Engine) execInTxn(ctx context.Context, sql string, cfg execConfig) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, rferrors.Wrap(rferrors.CodeParse, err)
	}
	if isReadStmt(stmt) {
		cfg.snap = e.newSnapCell(cfg.tx)
		return e.execStmtLocked(ctx, stmt, cfg)
	}
	return e.execTxnWrite(ctx, stmt, cfg)
}

// ExecAll executes a semicolon-separated script, returning one result per
// statement. Execution stops at the first error. Each statement acquires the
// engine lock independently; a script is not one atomic unit with respect to
// concurrent readers.
//
// Deprecated: new code should use ExecAllContext.
func (e *Engine) ExecAll(sql string) ([]*Result, error) {
	return e.ExecAllContext(context.Background(), sql)
}

// ExecAllContext is ExecAll with cancellation: the script stops at the first
// error or at the first statement that observes a cancelled context.
func (e *Engine) ExecAllContext(ctx context.Context, sql string) ([]*Result, error) {
	stmts, err := sqlparser.ParseAll(sql)
	if err != nil {
		return nil, rferrors.Wrap(rferrors.CodeParse, err)
	}
	out := make([]*Result, 0, len(stmts))
	for _, s := range stmts {
		res, err := e.ExecStmtContext(ctx, s)
		if err != nil {
			return out, fmt.Errorf("in %q: %w", s.String(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// isReadStmt reports whether a statement runs under the shared lock.
func isReadStmt(stmt sqlparser.Statement) bool {
	switch stmt.(type) {
	case *sqlparser.Select, *sqlparser.Union, *sqlparser.Explain:
		return true
	}
	return false
}

// ExecStmt executes a parsed statement under the engine's locking
// discipline: shared for reads, exclusive for everything else.
//
// Deprecated: new code should use ExecStmtContext.
func (e *Engine) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	return e.ExecStmtContext(context.Background(), stmt)
}

// ExecStmtContext is ExecStmt with cancellation and per-call options.
func (e *Engine) ExecStmtContext(ctx context.Context, stmt sqlparser.Statement, opts ...ExecOption) (*Result, error) {
	var cfg execConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.trace = cfg.analyze || e.slowLogArmed()
	if err := ctx.Err(); err != nil {
		return nil, rferrors.Wrap(rferrors.CodeCancelled, err)
	}
	if isReadStmt(stmt) {
		cfg.drained = e.drainIfPending()
		return e.readStable(cfg, func(c execConfig) (*Result, error) {
			return e.execStmtLocked(ctx, stmt, c)
		})
	}
	lockStart := time.Now()
	e.mu.Lock()
	e.met.commitWait.Observe(time.Since(lockStart).Seconds())
	defer e.mu.Unlock()
	return e.execWriteLocked(ctx, stmt)
}

// SetWriteHooks installs the durability hooks: before receives the canonical
// text of each mutating statement ahead of its application (an error refuses
// the statement), after runs once the application attempt finishes. Both run
// under the exclusive engine lock. Either may be nil.
func (e *Engine) SetWriteHooks(before func(sql string) error, after func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.logWrite = before
	e.postWrite = after
}

// Quiesce runs fn while holding the engine's exclusive lock, blocking every
// statement for the duration. The durability subsystem uses it to take
// consistent snapshots of the catalog, heaps, and view manager.
func (e *Engine) Quiesce(fn func() error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn()
}

// execWriteLocked dispatches a mutating statement. Callers hold the
// exclusive lock. The durability discipline differs by class:
//
//   - DML runs inside an auto-commit transaction and reaches the log as a
//     commit record, only on success — failed or conflicted statements leave
//     no trace, in memory or on disk.
//   - DDL and REFRESH log their canonical SQL ahead of applying (a failed
//     statement replays to the same failure — the engine is deterministic),
//     and publish inside a commitSeq window so lock-free readers never
//     observe a half-applied schema change.
func (e *Engine) execWriteLocked(ctx context.Context, stmt sqlparser.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.Begin, *sqlparser.Commit, *sqlparser.Rollback:
		return nil, rferrors.New(rferrors.CodeTxnState,
			"transaction control requires a session (server connections hold one; library callers use engine.NewSession)")
	case *sqlparser.Insert, *sqlparser.Update, *sqlparser.Delete:
		tx := e.newTxn(false)
		cfg := execConfig{tx: tx, snap: e.newSnapCell(tx)}
		res, err := e.execDML(ctx, stmt, cfg)
		if err != nil {
			tx.Abort()
			e.txnRollbacks.Add(1)
			if rferrors.CodeOf(err) == rferrors.CodeConflict {
				e.txnConflicts.Add(1)
			}
			return nil, err
		}
		if err := e.commitTxnLocked(tx, true); err != nil {
			return nil, err
		}
		return res, nil
	case *sqlparser.RefreshMatView:
		if e.logWrite != nil {
			if err := e.logWrite(stmt.String()); err != nil {
				return nil, fmt.Errorf("durability: %w", err)
			}
		}
		tx := e.newTxn(false)
		err := e.Views.RefreshTx(ctx, tx, s.Name)
		if err != nil {
			tx.Abort()
			e.txnRollbacks.Add(1)
		} else {
			err = e.commitTxnLocked(tx, false) // the logged SQL is the replay
		}
		if e.postWrite != nil {
			e.postWrite()
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	default:
		if e.logWrite != nil {
			if err := e.logWrite(stmt.String()); err != nil {
				return nil, fmt.Errorf("durability: %w", err)
			}
		}
		e.commitSeq.Add(1)
		res, err := e.execStmtLocked(ctx, stmt, execConfig{})
		e.commitSeq.Add(1)
		if e.postWrite != nil {
			e.postWrite()
		}
		return res, err
	}
}

// execDML routes a DML statement into its transaction.
func (e *Engine) execDML(ctx context.Context, stmt sqlparser.Statement, cfg execConfig) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.Insert:
		return e.execInsert(ctx, s, cfg)
	case *sqlparser.Update:
		return e.execUpdate(s, cfg)
	case *sqlparser.Delete:
		return e.execDelete(s, cfg)
	}
	return nil, rferrors.New(rferrors.CodeUnsupported, "engine: unsupported statement %T", stmt)
}

// execStmtLocked dispatches a parsed statement. Callers hold the engine lock
// in the mode appropriate for the statement kind.
func (e *Engine) execStmtLocked(ctx context.Context, stmt sqlparser.Statement, cfg execConfig) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.Select, *sqlparser.Union:
		return e.execSelect(ctx, s.(sqlparser.SelectStatement), cfg)
	case *sqlparser.Explain:
		return e.explain(ctx, s, cfg)
	case *sqlparser.CreateTable:
		cols := make([]catalog.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := e.Cat.CreateTable(s.Name, cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateIndex:
		if _, err := e.Cat.CreateIndex(s.Name, s.Table, s.Columns, s.Unique, true); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.CreateMatView:
		if err := e.Views.CreateContext(ctx, s); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropTable:
		if err := e.Cat.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropMatView:
		if err := e.Views.Drop(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.DropIndex:
		if err := e.Cat.DropIndex(s.Table, s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparser.Begin, *sqlparser.Commit, *sqlparser.Rollback:
		return nil, rferrors.New(rferrors.CodeTxnState,
			"transaction control requires a session (server connections hold one; library callers use engine.NewSession)")
	default:
		return nil, rferrors.New(rferrors.CodeUnsupported, "engine: unsupported statement %T", stmt)
	}
}

// planner returns a fresh planner with the engine's current options. The
// context rides into the Window operator so partition evaluation — the
// longest-running phase of a reporting-function query — observes
// cancellation; winStats aggregates its parallelism telemetry.
func (e *Engine) planner(ctx context.Context, snap func() txn.Snapshot) *plan.Planner {
	return plan.New(e.Cat, plan.Options{
		NativeWindow:      e.Opts.NativeWindow,
		UseIndexes:        e.Opts.UseIndexes,
		UseHashJoin:       e.Opts.UseHashJoin,
		WindowParallelism: e.Opts.WindowParallelism,
		Ctx:               ctx,
		WindowStats:       e.winStats,
		DisableVectorized: e.Opts.DisableVectorized,
		NoSharedSort:      e.Opts.DisableSharedSort,
		Spill:             e.spillCfg,
		Snap:              snap,
	})
}

// SpillStats returns the engine's out-of-core execution counters.
func (e *Engine) SpillStats() *spill.Stats { return e.spillCfg.Stats }

// WindowStats returns the engine's window-operator telemetry: partition
// parallelism and the shared-sort counters (sorts performed, shared
// consumptions, segmented re-partitionings).
func (e *Engine) WindowStats() *exec.WindowStats { return e.winStats }

// SpillBudget returns the engine's shared executor memory budget.
func (e *Engine) SpillBudget() *spill.Budget { return e.spillCfg.Budget }

// SweepSpill eagerly resolves the spill directory, removing stale run files
// and orphaned heap files a dead process left behind, and reports how many
// were swept. Servers call it at startup; engines that never spill or page
// out otherwise never touch the disk.
func (e *Engine) SweepSpill() (int, error) { return e.spillEnv.Sweep() }

// StorageStats snapshots the buffer pool; the zero value when paged storage
// is disabled.
func (e *Engine) StorageStats() storage.PoolStats {
	if e.pager == nil {
		return storage.PoolStats{}
	}
	return e.pager.Stats()
}

// PageSize returns the paged-storage page size, or 0 when paged storage is
// disabled.
func (e *Engine) PageSize() int {
	if e.pager == nil {
		return 0
	}
	return e.pager.PageSize()
}

// FlushStorage writes back every dirty unpinned page. The WAL checkpoint
// calls it under the exclusive lock so heap files quiesce alongside the
// snapshot; it is safe (a no-op) when paged storage is disabled.
func (e *Engine) FlushStorage() error {
	if e.pager == nil {
		return nil
	}
	return e.pager.FlushDirty()
}

// Close releases engine-owned disk state: the buffer pool's budget charge,
// every heap file, and every spill run file (and the private spill
// directory, when no SpillDir was configured). The engine itself remains
// usable for in-memory work only in tests; servers call Close once, at
// shutdown, after the last query finished.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	if e.pager != nil {
		first = e.pager.Close()
	}
	if err := e.spillEnv.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// RewriteSelect applies the engine's rewrite pipeline to a select statement
// without executing it: first the materialized-view derivation (§3–§5), then
// — if the native window operator is off — the Fig. 2 self-join simulation.
// It returns the (possibly unchanged) statement and the derivation record.
func (e *Engine) RewriteSelect(stmt sqlparser.SelectStatement) (sqlparser.SelectStatement, *rewrite.Derivation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rewriteSelect(stmt, false)
}

// rewriteSelect applies the derivation rewrite. noDerive skips it: statements
// inside an explicit transaction read at a fixed snapshot, while derivation
// decisions (view freshness, BaseRows caps) track the latest committed state
// — mixing the two could derive from a view the snapshot predates.
func (e *Engine) rewriteSelect(stmt sqlparser.SelectStatement, noDerive bool) (sqlparser.SelectStatement, *rewrite.Derivation, error) {
	if sel, ok := stmt.(*sqlparser.Select); ok && e.Opts.UseMatViews && !noDerive {
		d, err := rewrite.Derive(e.Cat, sel, e.Opts.Strategy, e.Opts.Form)
		if err != nil {
			return nil, nil, err
		}
		if d != nil {
			if e.Opts.DerivationMaxRows > 0 && !d.Exact &&
				d.View.Table.Heap.Len() > e.Opts.DerivationMaxRows {
				// The §7 advisory: past this size, a relational derivation
				// costs more than recomputing from raw data.
				return stmt, nil, nil
			}
			if err := e.Views.CheckFresh(d.View.Name); err != nil {
				return nil, nil, err
			}
			return d.Stmt, d, nil
		}
	}
	return stmt, nil, nil
}

func (e *Engine) planSelect(ctx context.Context, stmt sqlparser.SelectStatement, cfg execConfig) (exec.Operator, *Result, error) {
	res := &Result{}
	rewritten, d, err := e.rewriteSelect(stmt, cfg.tx != nil && cfg.tx.Explicit)
	if err != nil {
		return nil, nil, err
	}
	if d != nil {
		res.Derivation = d
		res.Rewritten = rewritten.String()
		stmt = rewritten
	}
	// Querying a materialized view directly must see fresh contents.
	if err := e.checkFromFreshness(stmt); err != nil {
		return nil, nil, err
	}
	op, err := e.planPhysical(ctx, stmt, res, cfg)
	if err != nil {
		return nil, nil, err
	}
	res.execStmt = stmt
	// Captured before any instrumentation so the plan cache can replay a
	// clean EXPLAIN rendering on later hits.
	res.planText = exec.FormatPlan(op)
	return op, res, nil
}

// planPhysical turns a (post-derivation) statement into an operator tree,
// falling back to the Fig. 2 self-join simulation when the native window
// operator is disabled.
func (e *Engine) planPhysical(ctx context.Context, stmt sqlparser.SelectStatement, res *Result, cfg execConfig) (exec.Operator, error) {
	if cfg.snap == nil {
		cfg.snap = e.newSnapCell(cfg.tx)
	}
	op, err := e.planner(ctx, cfg.snap).PlanSelect(stmt)
	if errors.Is(err, plan.ErrWindowDisabled) {
		sel, ok := stmt.(*sqlparser.Select)
		if !ok {
			return nil, err
		}
		sj, rerr := rewrite.SelfJoin(sel)
		if rerr != nil {
			return nil, fmt.Errorf("%w; self-join simulation also failed: %v", err, rerr)
		}
		res.Rewritten = sj.String()
		op, err = e.planner(ctx, cfg.snap).PlanSelect(sj)
	}
	return op, err
}

func (e *Engine) execSelect(ctx context.Context, stmt sqlparser.SelectStatement, cfg execConfig) (*Result, error) {
	op, res, err := e.planSelect(ctx, stmt, cfg)
	if err != nil {
		return nil, err
	}
	return e.runOperator(ctx, op, res, cfg)
}

// runOperator drains an operator tree into res, instrumenting it first when
// tracing is on.
func (e *Engine) runOperator(ctx context.Context, op exec.Operator, res *Result, cfg execConfig) (*Result, error) {
	if cfg.trace {
		op = exec.Instrument(op)
	}
	rows, err := exec.CollectCtx(ctx, op)
	if err != nil {
		return nil, err
	}
	res.Columns = plan.OutputNames(op)
	res.Rows = rows
	res.Affected = len(rows)
	res.MaintenanceDrained = cfg.drained
	if cfg.trace {
		res.Analyzed = annotationHeader(res) + exec.FormatAnalyzedPlan(op)
	}
	return res, nil
}

func (e *Engine) explain(ctx context.Context, s *sqlparser.Explain, cfg execConfig) (*Result, error) {
	sel, ok := s.Stmt.(sqlparser.SelectStatement)
	if !ok {
		return nil, rferrors.New(rferrors.CodeUnsupported, "EXPLAIN supports SELECT statements")
	}
	if s.Analyze {
		// EXPLAIN ANALYZE executes the statement instrumented and reports
		// the measured tree instead of the result rows.
		cfg.analyze, cfg.trace = true, true
		op, res, err := e.planSelect(ctx, sel, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := e.runOperator(ctx, op, res, cfg); err != nil {
			return nil, err
		}
		return planResult(res, res.Analyzed), nil
	}
	// Plain EXPLAIN replays a valid cached plan's rendering when one exists —
	// the annotation a user sees must match the plan that will actually run.
	if ent, hit := e.plans.Get(sel.String()); hit && e.planValid(ent) && ent.planText != "" {
		res := &Result{Derivation: ent.derivation, Rewritten: ent.rewrittenSQL, CacheHit: true, MaintenanceDrained: cfg.drained}
		return planResult(res, annotationHeader(res)+ent.planText), nil
	}
	op, res, err := e.planSelect(ctx, sel, cfg)
	if err != nil {
		return nil, err
	}
	res.MaintenanceDrained = cfg.drained
	return planResult(res, annotationHeader(res)+exec.FormatPlan(op)), nil
}

// planResult packages an EXPLAIN rendering as a one-row result.
func planResult(res *Result, txt string) *Result {
	res.Plan = txt
	res.Columns = []string{"plan"}
	res.Rows = []sqltypes.Row{{sqltypes.NewString(txt)}}
	res.Affected = len(res.Rows)
	res.execStmt = nil // EXPLAIN results must never enter the plan cache
	return res
}

// checkFromFreshness rejects queries whose FROM clause references a stale
// materialized view.
func (e *Engine) checkFromFreshness(stmt sqlparser.SelectStatement) error {
	var checkFrom func(t sqlparser.TableExpr) error
	var checkSel func(s sqlparser.SelectStatement) error
	checkFrom = func(t sqlparser.TableExpr) error {
		switch x := t.(type) {
		case nil:
			return nil
		case *sqlparser.TableName:
			if _, ok := e.Cat.MatView(x.Name); ok {
				return e.Views.CheckFresh(x.Name)
			}
			return nil
		case *sqlparser.Join:
			if err := checkFrom(x.Left); err != nil {
				return err
			}
			return checkFrom(x.Right)
		case *sqlparser.DerivedTable:
			return checkSel(x.Select)
		default:
			return nil
		}
	}
	checkSel = func(s sqlparser.SelectStatement) error {
		switch x := s.(type) {
		case *sqlparser.Select:
			return checkFrom(x.From)
		case *sqlparser.Union:
			if err := checkSel(x.Left); err != nil {
				return err
			}
			return checkSel(x.Right)
		default:
			return nil
		}
	}
	return checkSel(stmt)
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// DML executors. Each runs inside cfg.tx — the enclosing explicit
// transaction, or the statement's own auto-commit transaction — creating
// pending row versions and recording a delta for commit-time view
// maintenance and the WAL commit record. Reads (target selection, INSERT
// ... SELECT sources) happen at the transaction's snapshot, which includes
// the transaction's own earlier writes.

func (e *Engine) execInsert(ctx context.Context, s *sqlparser.Insert, cfg execConfig) (*Result, error) {
	tx := cfg.tx
	tbl, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Column mapping: explicit list or full table layout.
	colOrds := make([]int, 0, len(tbl.Columns))
	if len(s.Columns) == 0 {
		for i := range tbl.Columns {
			colOrds = append(colOrds, i)
		}
	} else {
		for _, c := range s.Columns {
			ord := tbl.ColumnIndex(c)
			if ord < 0 {
				return nil, fmt.Errorf("column %q does not exist in %q", c, s.Table)
			}
			colOrds = append(colOrds, ord)
		}
	}

	var srcRows []sqltypes.Row
	if s.Select != nil {
		res, err := e.execSelect(ctx, s.Select, execConfig{tx: tx, snap: e.newSnapCell(tx)})
		if err != nil {
			return nil, err
		}
		srcRows = res.Rows
	} else {
		empty := exprSchema()
		for _, rowExprs := range s.Rows {
			row := make(sqltypes.Row, len(rowExprs))
			for i, ex := range rowExprs {
				compiled, err := compileConst(ex, empty)
				if err != nil {
					return nil, err
				}
				row[i] = compiled
			}
			srcRows = append(srcRows, row)
		}
	}

	inserted := make([]sqltypes.Row, 0, len(srcRows))
	for _, src := range srcRows {
		if len(src) != len(colOrds) {
			return nil, fmt.Errorf("INSERT has %d values for %d columns", len(src), len(colOrds))
		}
		row := make(sqltypes.Row, len(tbl.Columns))
		for i := range row {
			row[i] = sqltypes.NullDatum
		}
		for i, ord := range colOrds {
			v, err := coerce(src[i], tbl.Columns[ord].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", tbl.Columns[ord].Name, err)
			}
			row[ord] = v
		}
		if _, err := tbl.Heap.InsertTx(tx, row); err != nil {
			return nil, err
		}
		inserted = append(inserted, row)
	}
	if len(inserted) > 0 {
		tx.AddDelta(txn.Delta{Table: tbl.Name, Kind: txn.DeltaInsert, Cols: tbl.ColumnNames(), Rows: inserted})
	}
	return &Result{Affected: len(inserted)}, nil
}

func (e *Engine) execUpdate(s *sqlparser.Update, cfg execConfig) (*Result, error) {
	tx := cfg.tx
	tbl, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(tbl, s.Table)
	var where compiledExpr
	if s.Where != nil {
		where, err = compileAgainst(s.Where, schema)
		if err != nil {
			return nil, err
		}
	}
	type setter struct {
		ord int
		ex  compiledExpr
	}
	setters := make([]setter, len(s.Set))
	for i, a := range s.Set {
		ord := tbl.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("column %q does not exist in %q", a.Column, s.Table)
		}
		ex, err := compileAgainst(a.Value, schema)
		if err != nil {
			return nil, err
		}
		setters[i] = setter{ord: ord, ex: ex}
	}

	type change struct {
		id            storage.RowID
		before, after sqltypes.Row
	}
	var changes []change
	var evalErr error
	visit := func(id storage.RowID, row sqltypes.Row) bool {
		if where != nil {
			v, err := where.Eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		after := row.Clone()
		for _, st := range setters {
			v, err := st.ex.Eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			cv, err := coerce(v, tbl.Columns[st.ord].Type)
			if err != nil {
				evalErr = err
				return false
			}
			after[st.ord] = cv
		}
		changes = append(changes, change{id: id, before: row, after: after})
		return true
	}
	// Point updates (WHERE col = literal with an index) probe instead of
	// scanning — the access-path side of §2.3's locality argument.
	if ids, rows, ok := pointLookupRows(tbl, s.Where, tx.Snap); ok {
		for i, id := range ids {
			if !visit(id, rows[i]) {
				break
			}
		}
	} else if err := tbl.Heap.ScanAt(tx.Snap, visit); err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	befores := make([]sqltypes.Row, len(changes))
	afters := make([]sqltypes.Row, len(changes))
	for i, c := range changes {
		if _, err := tbl.Heap.UpdateTx(tx, c.id, c.after); err != nil {
			return nil, err
		}
		befores[i] = c.before
		afters[i] = c.after
	}
	if len(changes) > 0 {
		tx.AddDelta(txn.Delta{Table: tbl.Name, Kind: txn.DeltaUpdate, Cols: tbl.ColumnNames(), Before: befores, After: afters})
	}
	return &Result{Affected: len(changes)}, nil
}

func (e *Engine) execDelete(s *sqlparser.Delete, cfg execConfig) (*Result, error) {
	tx := cfg.tx
	tbl, err := e.Cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := tableSchema(tbl, s.Table)
	var where compiledExpr
	if s.Where != nil {
		where, err = compileAgainst(s.Where, schema)
		if err != nil {
			return nil, err
		}
	}
	var ids []storage.RowID
	var rows []sqltypes.Row
	var evalErr error
	visit := func(id storage.RowID, row sqltypes.Row) bool {
		if where != nil {
			v, err := where.Eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, id)
		rows = append(rows, row)
		return true
	}
	if cand, candRows, ok := pointLookupRows(tbl, s.Where, tx.Snap); ok {
		for i, id := range cand {
			if !visit(id, candRows[i]) {
				break
			}
		}
	} else if err := tbl.Heap.ScanAt(tx.Snap, visit); err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	for _, id := range ids {
		if err := tbl.Heap.DeleteTx(tx, id); err != nil {
			return nil, err
		}
	}
	if len(ids) > 0 {
		tx.AddDelta(txn.Delta{Table: tbl.Name, Kind: txn.DeltaDelete, Cols: tbl.ColumnNames(), Rows: rows})
	}
	return &Result{Affected: len(ids)}, nil
}
