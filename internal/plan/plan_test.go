package plan

import (
	"strings"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/exec"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
)

// newTestCatalog builds seq(pos,val) [optionally indexed], t1(a,b), t2(a,c).
func newTestCatalog(t *testing.T, indexSeq bool) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, cols ...string) *catalog.Table {
		defs := make([]catalog.Column, len(cols))
		for i, c := range cols {
			defs[i] = catalog.Column{Name: c, Type: sqltypes.Int}
		}
		tbl, err := cat.CreateTable(name, defs)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	seq := mk("seq", "pos", "val")
	mk("t1", "a", "b")
	mk("t2", "a", "c")
	for i := int64(1); i <= 20; i++ {
		seq.Heap.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * 2)})
	}
	if indexSeq {
		if _, err := cat.CreateIndex("seq_pk", "seq", []string{"pos"}, true, true); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func planQuery(t *testing.T, cat *catalog.Catalog, opts Options, sql string) exec.Operator {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	op, err := New(cat, opts).PlanSelect(stmt.(sqlparser.SelectStatement))
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return op
}

func TestPlanUsesIndexJoinForInList(t *testing.T) {
	cat := newTestCatalog(t, true)
	// The Fig. 2 self-join pattern: the planner must probe seq.pos.
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT s1.pos, SUM(s2.val) AS w FROM seq s1, seq s2
		 WHERE s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos`)
	if !exec.PlanContains(op, "IndexNestedLoopJoin") {
		t.Fatalf("expected index join:\n%s", exec.FormatPlan(op))
	}
	// Without the index, the same query nested-loops.
	cat2 := newTestCatalog(t, false)
	op = planQuery(t, cat2, DefaultOptions(),
		`SELECT s1.pos, SUM(s2.val) AS w FROM seq s1, seq s2
		 WHERE s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos`)
	if exec.PlanContains(op, "IndexNestedLoopJoin") {
		t.Fatalf("index join without an index:\n%s", exec.FormatPlan(op))
	}
	if !exec.PlanContains(op, "NestedLoopJoin") {
		t.Fatalf("expected nested loop:\n%s", exec.FormatPlan(op))
	}
	// With indexes disabled, the index must be ignored.
	opts := DefaultOptions()
	opts.UseIndexes = false
	op = planQuery(t, cat, opts,
		`SELECT s1.pos, SUM(s2.val) AS w FROM seq s1, seq s2
		 WHERE s1.pos IN (s2.pos - 1, s2.pos, s2.pos + 1) GROUP BY s1.pos`)
	if exec.PlanContains(op, "IndexNestedLoopJoin") {
		t.Fatalf("index join despite UseIndexes=false:\n%s", exec.FormatPlan(op))
	}
}

func TestPlanUsesHashJoinForComputedEquiKeys(t *testing.T) {
	cat := newTestCatalog(t, false)
	// The Table 2 union-branch shape: MOD-residue equality is hash-joinable.
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT s1.pos, s2.val FROM seq s1, seq s2
		 WHERE MOD(s1.pos, 4) = MOD(s2.pos, 4) AND s1.pos > s2.pos`)
	if !exec.PlanContains(op, "HashJoin") {
		t.Fatalf("expected hash join:\n%s", exec.FormatPlan(op))
	}
	if !strings.Contains(exec.FormatPlan(op), "residual") {
		t.Fatalf("range condition must become a residual:\n%s", exec.FormatPlan(op))
	}
	// The disjunctive form defeats the hash join (OR of conditions).
	op = planQuery(t, cat, DefaultOptions(),
		`SELECT s1.pos, s2.val FROM seq s1, seq s2
		 WHERE (s1.pos > s2.pos AND MOD(s1.pos, 4) = MOD(s2.pos, 4))
		    OR (s1.pos - 1 > s2.pos AND MOD(s1.pos - 1, 4) = MOD(s2.pos, 4))`)
	if exec.PlanContains(op, "HashJoin") {
		t.Fatalf("hash join on a disjunctive predicate:\n%s", exec.FormatPlan(op))
	}
	if !exec.PlanContains(op, "NestedLoopJoin") {
		t.Fatalf("expected nested loop:\n%s", exec.FormatPlan(op))
	}
	// With hash joins disabled, fall back to nested loop.
	opts := DefaultOptions()
	opts.UseHashJoin = false
	op = planQuery(t, cat, opts,
		`SELECT s1.pos, s2.val FROM seq s1, seq s2 WHERE MOD(s1.pos, 4) = MOD(s2.pos, 4)`)
	if exec.PlanContains(op, "HashJoin") {
		t.Fatalf("hash join despite UseHashJoin=false:\n%s", exec.FormatPlan(op))
	}
}

func TestPlanPushesSingleTableFilters(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT t1.a FROM t1, t2 WHERE t1.b > 5 AND t2.c < 3 AND t1.a = t2.a`)
	plan := exec.FormatPlan(op)
	// Filters must sit below the join (appear after the join line, indented
	// under scans). Check there are two Filter operators and a HashJoin.
	if exec.CountOps(op, "Filter") < 2 {
		t.Fatalf("single-table predicates not pushed down:\n%s", plan)
	}
	if !exec.PlanContains(op, "HashJoin") {
		t.Fatalf("equi conjunct must drive a hash join:\n%s", plan)
	}
}

func TestPlanWindowDisabled(t *testing.T) {
	cat := newTestCatalog(t, false)
	opts := DefaultOptions()
	opts.NativeWindow = false
	stmt, _ := sqlparser.Parse(`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING) AS w FROM seq`)
	_, err := New(cat, opts).PlanSelect(stmt.(sqlparser.SelectStatement))
	if err == nil || !strings.Contains(err.Error(), "native window operator") {
		t.Fatalf("expected ErrWindowDisabled, got %v", err)
	}
}

func TestPlanWindowGrouping(t *testing.T) {
	cat := newTestCatalog(t, false)
	// Two windows sharing (partition, order) land in one Window operator;
	// a third with a different order gets its own.
	op := planQuery(t, cat, DefaultOptions(), `
	  SELECT pos,
	    SUM(val) OVER (ORDER BY pos ROWS 1 PRECEDING) AS a,
	    MIN(val) OVER (ORDER BY pos ROWS 2 PRECEDING) AS b,
	    SUM(val) OVER (ORDER BY val ROWS 1 PRECEDING) AS c
	  FROM seq`)
	if got := exec.CountOps(op, "Window"); got != 2 {
		t.Fatalf("expected 2 Window operators, got %d:\n%s", got, exec.FormatPlan(op))
	}
}

func TestPlanStarExpansion(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `SELECT * FROM t1, t2 WHERE t1.a = t2.a`)
	names := OutputNames(op)
	if len(names) != 4 {
		t.Fatalf("star expanded to %v", names)
	}
	op = planQuery(t, cat, DefaultOptions(), `SELECT t2.* FROM t1, t2 WHERE t1.a = t2.a`)
	names = OutputNames(op)
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Fatalf("qualified star expanded to %v", names)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := newTestCatalog(t, false)
	bad := []string{
		`SELECT nope FROM seq`,
		`SELECT pos FROM nope`,
		`SELECT a FROM t1, t2`, // ambiguous
		`SELECT pos FROM seq HAVING pos > 1`,
		`SELECT pos FROM seq LIMIT pos`,
		`SELECT SUM(val, pos) FROM seq`,
		`SELECT x.* FROM seq`,
		`SELECT pos FROM seq ORDER BY nope`,
	}
	for _, q := range bad {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := New(cat, DefaultOptions()).PlanSelect(stmt.(sqlparser.SelectStatement)); err == nil {
			t.Errorf("PlanSelect(%q) should fail", q)
		}
	}
}

func TestPlanLeftOuterKeepsPreservedSide(t *testing.T) {
	cat := newTestCatalog(t, true)
	// The probed side of a LOJ index join must be the right (null-supplying)
	// relation.
	op := planQuery(t, cat, DefaultOptions(),
		`SELECT t1.a, s.val FROM t1 LEFT OUTER JOIN seq s ON s.pos = t1.a`)
	if !exec.PlanContains(op, "IndexNestedLoopJoin (LeftOuter)") {
		t.Fatalf("expected left-outer index join:\n%s", exec.FormatPlan(op))
	}
}

func TestOutputNamesSynthesis(t *testing.T) {
	cat := newTestCatalog(t, false)
	op := planQuery(t, cat, DefaultOptions(), `SELECT pos + 1, val AS v FROM seq`)
	names := OutputNames(op)
	if names[0] != "column_1" || names[1] != "v" {
		t.Fatalf("names = %v", names)
	}
}
