// Command rfserverd serves an rfview engine over TCP, speaking the
// newline-delimited JSON protocol of internal/server.
//
// Usage:
//
//	rfserverd [-addr host:port] [-init script.sql] [-plan-cache N]
//	          [-no-native-window] [-no-indexes] [-no-views]
//	          [-strategy auto|maxoa|minoa] [-form disjunctive|union]
//	          [-window-parallelism N]
//
// The optional -init script runs before the listener opens (schema, data
// load, materialized views). SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight requests complete, then connections drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfview/internal/engine"
	"rfview/internal/rewrite"
	"rfview/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	initScript := flag.String("init", "", "SQL script executed before serving")
	planCache := flag.Int("plan-cache", engine.DefaultPlanCacheCapacity, "plan cache capacity (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful shutdown deadline")
	noWindow := flag.Bool("no-native-window", false, "disable the native window operator")
	noIndexes := flag.Bool("no-indexes", false, "disable index nested-loop joins")
	noViews := flag.Bool("no-views", false, "disable answering queries from materialized sequence views")
	strategy := flag.String("strategy", "auto", "derivation strategy: auto, maxoa, minoa")
	form := flag.String("form", "disjunctive", "derivation pattern form: disjunctive, union")
	windowPar := flag.Int("window-parallelism", 0,
		"window partition workers: 0 = GOMAXPROCS, 1 = sequential, N = up to N workers")
	flag.Parse()

	opts := engine.DefaultOptions()
	opts.NativeWindow = !*noWindow
	opts.WindowParallelism = *windowPar
	opts.UseIndexes = !*noIndexes
	opts.UseMatViews = !*noViews
	switch strings.ToLower(*strategy) {
	case "auto":
		opts.Strategy = rewrite.StrategyAuto
	case "maxoa":
		opts.Strategy = rewrite.StrategyMaxOA
	case "minoa":
		opts.Strategy = rewrite.StrategyMinOA
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	switch strings.ToLower(*form) {
	case "disjunctive":
		opts.Form = rewrite.FormDisjunctive
	case "union":
		opts.Form = rewrite.FormUnion
	default:
		log.Fatalf("unknown form %q", *form)
	}

	e := engine.New(opts)
	e.SetPlanCacheCapacity(*planCache)
	if *initScript != "" {
		sql, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("init: %v", err)
		}
		if _, err := e.ExecAll(string(sql)); err != nil {
			log.Fatalf("init: %v", err)
		}
		log.Printf("init script %s applied", *initScript)
	}

	srv := server.New(e)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// The ready line goes to stdout so scripts can wait for it.
	fmt.Printf("rfserverd listening on %s\n", lis.Addr())
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(lis) }()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("signal %v: draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		st := srv.Stats()
		cs := e.PlanCacheStats()
		log.Printf("served %d requests over %d connections (%d errors); plan cache %d/%d entries, %d hits, %d misses",
			st.Requests, st.Accepted, st.Errors, cs.Len, cs.Capacity, cs.Hits, cs.Misses)
	}
}
