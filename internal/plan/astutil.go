package plan

import (
	"fmt"

	"rfview/internal/expr"
	"rfview/internal/sqlparser"
)

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*sqlparser.AndExpr); ok {
		return append(splitAnd(a.Left), splitAnd(a.Right)...)
	}
	return []sqlparser.Expr{e}
}

// joinAnd rebuilds a conjunction (nil for an empty list).
func joinAnd(conjuncts []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &sqlparser.AndExpr{Left: out, Right: c}
		}
	}
	return out
}

// exprTables returns the set of relation reference names an expression's
// columns resolve to under the given schema. Unqualified names resolve by
// unique column name.
func exprTables(e sqlparser.Expr, schema *expr.Schema) (map[string]bool, error) {
	out := make(map[string]bool)
	var walkErr error
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if walkErr != nil {
			return false
		}
		c, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return true
		}
		idx, err := schema.Resolve(c.Table, c.Name)
		if err != nil {
			walkErr = err
			return false
		}
		out[schema.Cols[idx].Table] = true
		return true
	})
	return out, walkErr
}

// subsetOf reports whether every element of a is in b.
func subsetOf(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// rewriteExpr returns a copy of e with every node for which fn returns a
// non-nil replacement substituted (fn is applied top-down; replaced subtrees
// are not revisited).
func rewriteExpr(e sqlparser.Expr, fn func(sqlparser.Expr) sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	if r := fn(e); r != nil {
		return r
	}
	switch x := e.(type) {
	case *sqlparser.ColumnRef, *sqlparser.Literal:
		return e
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{Op: x.Op, Left: rewriteExpr(x.Left, fn), Right: rewriteExpr(x.Right, fn)}
	case *sqlparser.UnaryExpr:
		return &sqlparser.UnaryExpr{Op: x.Op, Expr: rewriteExpr(x.Expr, fn)}
	case *sqlparser.ComparisonExpr:
		return &sqlparser.ComparisonExpr{Op: x.Op, Left: rewriteExpr(x.Left, fn), Right: rewriteExpr(x.Right, fn)}
	case *sqlparser.AndExpr:
		return &sqlparser.AndExpr{Left: rewriteExpr(x.Left, fn), Right: rewriteExpr(x.Right, fn)}
	case *sqlparser.OrExpr:
		return &sqlparser.OrExpr{Left: rewriteExpr(x.Left, fn), Right: rewriteExpr(x.Right, fn)}
	case *sqlparser.NotExpr:
		return &sqlparser.NotExpr{Expr: rewriteExpr(x.Expr, fn)}
	case *sqlparser.InExpr:
		list := make([]sqlparser.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = rewriteExpr(it, fn)
		}
		return &sqlparser.InExpr{Left: rewriteExpr(x.Left, fn), List: list, Negated: x.Negated}
	case *sqlparser.BetweenExpr:
		return &sqlparser.BetweenExpr{
			Expr: rewriteExpr(x.Expr, fn), From: rewriteExpr(x.From, fn),
			To: rewriteExpr(x.To, fn), Negated: x.Negated,
		}
	case *sqlparser.IsNullExpr:
		return &sqlparser.IsNullExpr{Expr: rewriteExpr(x.Expr, fn), Negated: x.Negated}
	case *sqlparser.FuncExpr:
		args := make([]sqlparser.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteExpr(a, fn)
		}
		return &sqlparser.FuncExpr{Name: x.Name, Args: args, Star: x.Star}
	case *sqlparser.CaseExpr:
		whens := make([]sqlparser.When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = sqlparser.When{Cond: rewriteExpr(w.Cond, fn), Then: rewriteExpr(w.Then, fn)}
		}
		return &sqlparser.CaseExpr{Whens: whens, Else: rewriteExpr(x.Else, fn)}
	case *sqlparser.WindowExpr:
		fargs := make([]sqlparser.Expr, len(x.Func.Args))
		for i, a := range x.Func.Args {
			fargs[i] = rewriteExpr(a, fn)
		}
		pb := make([]sqlparser.Expr, len(x.PartitionBy))
		for i, p := range x.PartitionBy {
			pb[i] = rewriteExpr(p, fn)
		}
		ob := make([]sqlparser.OrderItem, len(x.OrderBy))
		for i, o := range x.OrderBy {
			ob[i] = sqlparser.OrderItem{Expr: rewriteExpr(o.Expr, fn), Desc: o.Desc}
		}
		return &sqlparser.WindowExpr{
			Func:        &sqlparser.FuncExpr{Name: x.Func.Name, Args: fargs, Star: x.Func.Star},
			PartitionBy: pb, OrderBy: ob, Frame: x.Frame,
		}
	default:
		panic(fmt.Sprintf("plan: rewriteExpr missing case %T", e))
	}
}

// containsWindow reports whether the expression contains a window function.
func containsWindow(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if _, ok := x.(*sqlparser.WindowExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsBareAggregate reports whether the expression contains an aggregate
// call that is not itself a window function (a WindowExpr's own Func does
// not count, but aggregates nested in its arguments do).
func containsBareAggregate(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sqlparser.FuncExpr:
		if expr.AggregateNames[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if containsBareAggregate(a) {
				return true
			}
		}
		return false
	case *sqlparser.WindowExpr:
		for _, a := range x.Func.Args {
			if containsBareAggregate(a) {
				return true
			}
		}
		for _, p := range x.PartitionBy {
			if containsBareAggregate(p) {
				return true
			}
		}
		for _, o := range x.OrderBy {
			if containsBareAggregate(o.Expr) {
				return true
			}
		}
		return false
	case *sqlparser.ColumnRef, *sqlparser.Literal:
		return false
	case *sqlparser.BinaryExpr:
		return containsBareAggregate(x.Left) || containsBareAggregate(x.Right)
	case *sqlparser.UnaryExpr:
		return containsBareAggregate(x.Expr)
	case *sqlparser.ComparisonExpr:
		return containsBareAggregate(x.Left) || containsBareAggregate(x.Right)
	case *sqlparser.AndExpr:
		return containsBareAggregate(x.Left) || containsBareAggregate(x.Right)
	case *sqlparser.OrExpr:
		return containsBareAggregate(x.Left) || containsBareAggregate(x.Right)
	case *sqlparser.NotExpr:
		return containsBareAggregate(x.Expr)
	case *sqlparser.InExpr:
		if containsBareAggregate(x.Left) {
			return true
		}
		for _, it := range x.List {
			if containsBareAggregate(it) {
				return true
			}
		}
		return false
	case *sqlparser.BetweenExpr:
		return containsBareAggregate(x.Expr) || containsBareAggregate(x.From) || containsBareAggregate(x.To)
	case *sqlparser.IsNullExpr:
		return containsBareAggregate(x.Expr)
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			if containsBareAggregate(w.Cond) || containsBareAggregate(w.Then) {
				return true
			}
		}
		return containsBareAggregate(x.Else)
	default:
		return false
	}
}
