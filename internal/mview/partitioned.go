package mview

import (
	"fmt"
	"sort"
	"strings"

	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/rewrite"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// Partitioned sequence views implement §6.2's *complete reporting function*:
// one complete simple sequence (header + body + trailer) per partition,
// materialized into a backing table (part, pos, val, body). The position
// column must hold the dense integers 1…n_p *within each partition* — the
// per-partition rank the paper's reporting sequences order by. The
// per-partition maintenance itself lives in core.PartitionedMaintainer; this
// file binds it to SQL datum keys and the backing table.

// isPartitionedSequenceShape accepts
// SELECT part, pos, agg(val) OVER (PARTITION BY part ORDER BY pos ROWS …).
func isPartitionedSequenceShape(wq *rewrite.WindowQuery) bool {
	if len(wq.PartitionBy) != 1 {
		return false
	}
	part := wq.PartitionBy[0]
	sawPos, sawPart := false, false
	for _, c := range wq.PlainCols {
		switch {
		case strings.EqualFold(c, wq.PosCol) && !sawPos:
			sawPos = true
		case strings.EqualFold(c, part) && !sawPart:
			sawPart = true
		default:
			return false
		}
	}
	return sawPos && sawPart
}

// readPartitionedSequences reads (part, pos, val) from the base table and
// validates per-partition density. Keys are returned in sorted render order
// for deterministic materialization.
func (m *Manager) readPartitionedSequences(base *catalog.Table, posCol, partCol, valCol string) (map[string]sqltypes.Datum, map[string][]float64, error) {
	posIdx := base.ColumnIndex(posCol)
	partIdx := base.ColumnIndex(partCol)
	valIdx := base.ColumnIndex(valCol)
	if posIdx < 0 || partIdx < 0 || valIdx < 0 {
		return nil, nil, fmt.Errorf("mview: partitioned sequence view needs columns %q, %q, %q", posCol, partCol, valCol)
	}
	type pv struct {
		pos int64
		val float64
	}
	keys := make(map[string]sqltypes.Datum)
	rows := make(map[string][]pv)
	var scanErr error
	hErr := m.hScan(base, func(_ storage.RowID, row sqltypes.Row) bool {
		p := row[posIdx]
		pt := row[partIdx]
		v := row[valIdx]
		if p.IsNull() || p.Typ() != sqltypes.Int || pt.IsNull() || v.IsNull() || !v.Typ().Numeric() {
			scanErr = fmt.Errorf("mview: partitioned sequence views need non-NULL integer positions, non-NULL partition keys, and numeric values")
			return false
		}
		k := pt.String()
		keys[k] = pt
		rows[k] = append(rows[k], pv{pos: p.Int(), val: v.Float()})
		return true
	})
	if scanErr == nil {
		scanErr = hErr
	}
	if scanErr != nil {
		return nil, nil, scanErr
	}
	raws := make(map[string][]float64, len(rows))
	for k, list := range rows {
		sort.Slice(list, func(i, j int) bool { return list[i].pos < list[j].pos })
		raw := make([]float64, len(list))
		for i, r := range list {
			if r.pos != int64(i+1) {
				return nil, nil, fmt.Errorf("mview: partition %q needs dense positions 1…n; found %d at rank %d", k, r.pos, i+1)
			}
			raw[i] = r.val
		}
		raws[k] = raw
	}
	return keys, raws, nil
}

// buildPartitionedMaintainer materializes one PartitionedMaintainer from the
// per-partition raw sequences.
func buildPartitionedMaintainer(win core.Window, agg core.Agg, raws map[string][]float64) (*core.PartitionedMaintainer, error) {
	pm, err := core.NewPartitionedMaintainer(win, agg)
	if err != nil {
		return nil, err
	}
	for k, raw := range raws {
		if err := pm.SetPartition(k, raw); err != nil {
			return nil, err
		}
	}
	return pm, nil
}

func (m *Manager) createPartitionedSequenceView(stmt *sqlparser.CreateMatView, wq *rewrite.WindowQuery) error {
	base, err := m.cat.Table(wq.Table)
	if err != nil {
		return err
	}
	agg, err := aggOf(wq.Agg)
	if err != nil {
		return err
	}
	if agg == core.Avg {
		return fmt.Errorf("mview: partitioned AVG views are not supported; materialize SUM and COUNT views instead (§2.1)")
	}
	partCol := wq.PartitionBy[0]
	valCol := wq.ValCol
	if valCol == "" {
		valCol = wq.PosCol
	}
	keys, raws, err := m.readPartitionedSequences(base, wq.PosCol, partCol, valCol)
	if err != nil {
		return err
	}
	win := windowOf(wq.Shape)
	pm, err := buildPartitionedMaintainer(win, agg, raws)
	if err != nil {
		return err
	}

	valType := sqltypes.Int
	if base.Columns[base.ColumnIndex(valCol)].Type == sqltypes.Float {
		valType = sqltypes.Float
	}
	partType := base.Columns[base.ColumnIndex(partCol)].Type
	backingName := "__mv_" + stmt.Name
	backing, err := m.cat.CreateTable(backingName, []catalog.Column{
		{Name: "part", Type: partType},
		{Name: "pos", Type: sqltypes.Int},
		{Name: "val", Type: valType},
		{Name: "body", Type: sqltypes.Bool},
	})
	if err != nil {
		return err
	}
	if _, err := m.cat.CreateIndex("pk_"+stmt.Name, backingName, []string{"part", "pos"}, true, true); err != nil {
		return err
	}
	mv := &catalog.MatView{
		Name: stmt.Name, Kind: catalog.SequenceView, Table: backing,
		BaseTable: base.Name, PosColumn: wq.PosCol, PartColumn: partCol,
		ValColumn: valCol, Agg: wq.Agg, Window: toSpec(win),
		Definition: stmt.String(),
	}
	// Fill before registering (see createSequenceView).
	sv := &seqView{mv: mv, agg: agg, valType: valType, pm: pm, partKeys: keys}
	if err := m.fillPartitionedBacking(sv); err != nil {
		m.cat.DropTable(backingName)
		return err
	}
	if err := m.cat.RegisterMatView(mv); err != nil {
		m.cat.DropTable(backingName)
		return err
	}
	m.seq[lower(stmt.Name)] = sv
	return nil
}

// fillPartitionedBacking rewrites the backing table from every partition's
// maintained sequence.
func (m *Manager) fillPartitionedBacking(sv *seqView) error {
	var ids []storage.RowID
	if err := m.hScan(sv.mv.Table, func(id storage.RowID, _ sqltypes.Row) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return err
	}
	for _, id := range ids {
		if err := m.hDelete(sv.mv.Table, id); err != nil {
			return err
		}
	}
	for _, key := range sv.pm.Keys() {
		seq := sv.pm.Partition(key).Seq()
		part := sv.partKeys[key]
		for k := seq.Lo(); k <= seq.Hi(); k++ {
			v, ok := seq.AtOK(k)
			if !ok {
				continue
			}
			row := sqltypes.Row{part, sqltypes.NewInt(int64(k)), sv.datum(v),
				sqltypes.NewBool(k >= 1 && k <= seq.N)}
			if err := m.hInsert(sv.mv.Table, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// upsertPart writes (part, pos, val, body) through the (part, pos) index.
func (m *Manager) upsertPart(sv *seqView, part sqltypes.Datum, maint *core.Maintainer, pos int, val float64, ok bool) error {
	h := sv.mv.Table.Heap.IndexOn([]int{0, 1})
	if h == nil {
		return fmt.Errorf("mview: backing table of %q lost its index", sv.mv.Name)
	}
	key := sqltypes.Row{part, sqltypes.NewInt(int64(pos))}
	id, found := m.hFirst(sv.mv.Table, h, key)
	if !ok {
		if found {
			return m.hDelete(sv.mv.Table, id)
		}
		return nil
	}
	n := maint.Seq().N
	row := sqltypes.Row{part, sqltypes.NewInt(int64(pos)), sv.datum(val),
		sqltypes.NewBool(pos >= 1 && pos <= n)}
	if found {
		return m.hUpdate(sv.mv.Table, id, row)
	}
	return m.hInsert(sv.mv.Table, row)
}

// syncPartRange re-writes backing rows for positions [lo, hi] of one
// partition.
func (m *Manager) syncPartRange(sv *seqView, part sqltypes.Datum, maint *core.Maintainer, lo, hi int) error {
	seq := maint.Seq()
	for k := lo; k <= hi; k++ {
		if k < seq.Lo() || k > seq.Hi() {
			h := sv.mv.Table.Heap.IndexOn([]int{0, 1})
			if h == nil {
				return fmt.Errorf("mview: backing table of %q lost its index", sv.mv.Name)
			}
			if id, found := m.hFirst(sv.mv.Table, h, sqltypes.Row{part, sqltypes.NewInt(int64(k))}); found {
				if err := m.hDelete(sv.mv.Table, id); err != nil {
					return err
				}
			}
			continue
		}
		v, ok := seq.AtOK(k)
		if err := m.upsertPart(sv, part, maint, k, v, ok); err != nil {
			return err
		}
	}
	return nil
}

// applyPartitionedUpdate folds one base-row value update into the view.
func (m *Manager) applyPartitionedUpdate(sv *seqView, part sqltypes.Datum, pos int, val float64) {
	key := part.String()
	if err := sv.pm.Update(key, pos, val); err != nil {
		m.markStale(sv, err.Error())
		return
	}
	m.MaintenanceEvents++
	maint := sv.pm.Partition(key)
	w := maint.Seq().Win
	var err error
	switch {
	case maint.FullRecompute():
		// The exotic-value fallback rebuilt the partition's whole sequence.
		err = m.syncPartRange(sv, part, maint, maint.Seq().Lo(), maint.Seq().Hi())
	case w.Cumulative:
		err = m.syncPartRange(sv, part, maint, pos, maint.Seq().Hi())
	default:
		err = m.syncPartRange(sv, part, maint, pos-w.Following, pos+w.Preceding)
	}
	if err != nil {
		m.markStale(sv, err.Error())
	}
}

// applyPartitionedInsert folds one inserted base row into the view: appends
// at n_p+1 (including position 1 of a brand-new partition, a partition
// birth) stay incremental.
func (m *Manager) applyPartitionedInsert(sv *seqView, part sqltypes.Datum, pos int, val float64) {
	key := part.String()
	maint, born, err := sv.pm.Append(key, pos, val)
	if err != nil {
		m.markStale(sv, err.Error())
		return
	}
	m.MaintenanceEvents++
	if born {
		sv.partKeys[key] = part
		if err := m.syncPartRange(sv, part, maint, maint.Seq().Lo(), maint.Seq().Hi()); err != nil {
			m.markStale(sv, err.Error())
		}
		return
	}
	seq := maint.Seq()
	switch {
	case maint.FullRecompute():
		err = m.syncPartRange(sv, part, maint, seq.Lo(), seq.Hi())
	case seq.Win.Cumulative:
		err = m.syncPartRange(sv, part, maint, pos, seq.Hi())
	default:
		// The body flag of former trailer rows changes too; sync the band
		// plus the new trailer.
		err = m.syncPartRange(sv, part, maint, pos-seq.Win.Following, seq.Hi())
	}
	if err != nil {
		m.markStale(sv, err.Error())
	}
}

// applyPartitionedDelete folds one deleted base row into the view (suffix
// deletes only).
func (m *Manager) applyPartitionedDelete(sv *seqView, part sqltypes.Datum, pos int) {
	key := part.String()
	maint := sv.pm.Partition(key)
	var oldHi int
	if maint != nil {
		oldHi = maint.Seq().Hi()
	}
	died, err := sv.pm.DeleteSuffix(key, pos)
	if err != nil {
		m.markStale(sv, err.Error())
		return
	}
	m.MaintenanceEvents++
	if died {
		// The partition vanished: remove every remaining backing row (an
		// empty sequence would otherwise materialize zero-valued
		// header/trailer rows).
		var ids []storage.RowID
		if err := m.hScan(sv.mv.Table, func(id storage.RowID, row sqltypes.Row) bool {
			if sqltypes.Equal(row[0], part) {
				ids = append(ids, id)
			}
			return true
		}); err != nil {
			m.markStale(sv, err.Error())
			return
		}
		for _, id := range ids {
			if err := m.hDelete(sv.mv.Table, id); err != nil {
				m.markStale(sv, err.Error())
				return
			}
		}
		delete(sv.partKeys, key)
		return
	}
	seq := maint.Seq()
	switch {
	case maint.FullRecompute():
		err = m.syncPartRange(sv, part, maint, seq.Lo(), oldHi)
	case seq.Win.Cumulative:
		err = m.syncPartRange(sv, part, maint, pos, oldHi)
	default:
		err = m.syncPartRange(sv, part, maint, pos-seq.Win.Following, oldHi)
	}
	if err != nil {
		m.markStale(sv, err.Error())
	}
}

// refreshPartitioned fully recomputes a partitioned view.
func (m *Manager) refreshPartitioned(sv *seqView) error {
	base, err := m.cat.Table(sv.mv.BaseTable)
	if err != nil {
		return err
	}
	keys, raws, err := m.readPartitionedSequences(base, sv.mv.PosColumn, sv.mv.PartColumn, sv.mv.ValColumn)
	if err != nil {
		return err
	}
	pm, err := buildPartitionedMaintainer(windowOfSpec(sv.mv.Window), sv.agg, raws)
	if err != nil {
		return err
	}
	sv.pm = pm
	sv.partKeys = keys
	m.setFresh(sv)
	return m.fillPartitionedBacking(sv)
}
