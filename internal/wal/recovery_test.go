package wal

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"rfview/internal/engine"
	"rfview/internal/rewrite"
)

// The crash-injection harness: a durable engine and an always-alive
// reference engine execute the same statement stream; the durable one is
// "killed" mid-workload (its manager abandoned without Close, optionally
// with the WAL tail physically torn) and recovered from disk; then every
// query of a differential suite, under each of the paper's four evaluation
// strategies — native window, Fig. 2 self-join, MaxOA derivation, MinOA
// derivation — must answer identically on both engines.

// strategyOpts are the four evaluation configurations of the paper.
func strategyOpts() map[string]engine.Options {
	native := engine.DefaultOptions()
	native.UseMatViews = false

	selfJoin := native
	selfJoin.NativeWindow = false

	maxOA := engine.DefaultOptions()
	maxOA.Strategy = rewrite.StrategyMaxOA

	minOA := engine.DefaultOptions()
	minOA.Strategy = rewrite.StrategyMinOA

	return map[string]engine.Options{
		"native": native, "self-join": selfJoin, "MaxOA": maxOA, "MinOA": minOA,
	}
}

// diffQueries is the differential suite: window queries that match the
// materialized views (derivation fires), window queries that do not, direct
// view scans, and plain reads.
var diffQueries = []string{
	// Identical window to matseq: exact derivation.
	`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
	// Wider window: MaxOA / MinOA derivation from matseq.
	`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 4 PRECEDING AND 3 FOLLOWING) AS w FROM seq`,
	// Cumulative query.
	`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS w FROM seq`,
	// Partitioned query matching the partitioned view's window.
	`SELECT grp, pos, MAX(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM pt`,
	// Partitioned query with a wider window.
	`SELECT grp, pos, MAX(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS w FROM pt`,
	// Direct scans of every table and view.
	`SELECT pos, val FROM seq`,
	`SELECT grp, pos, val FROM pt`,
	`SELECT pos, val FROM matseq`,
	`SELECT part, pos, val, body FROM matpt`,
	`SELECT pos, val FROM plainv`,
	// Aggregates over base tables.
	`SELECT COUNT(*) AS c, SUM(val) AS s FROM seq`,
	`SELECT COUNT(*) AS c FROM pt`,
}

// renderResult flattens one query outcome — including errors — into a
// comparable string. Row order is normalized by sorting: restored heaps
// renumber row ids, and the comparison is about contents, not physical
// placement.
func renderResult(res *engine.Result, err error) string {
	if err != nil {
		return "ERROR: " + err.Error()
	}
	lines := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, d := range r {
			parts[i] = fmt.Sprintf("%v:%s", d.Typ(), d.String())
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(res.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

// compareEngines runs the differential suite under every strategy on both
// engines and fails on the first divergence.
func compareEngines(t *testing.T, recovered, reference *engine.Engine, ctx string) {
	t.Helper()
	compareEnginesOn(t, recovered, reference, diffQueries, ctx)
}

func compareEnginesOn(t *testing.T, recovered, reference *engine.Engine, queries []string, ctx string) {
	t.Helper()
	for name, opts := range strategyOpts() {
		recovered.Opts = opts
		reference.Opts = opts
		recovered.InvalidatePlans()
		reference.InvalidatePlans()
		for _, q := range queries {
			got := renderResult(recovered.Exec(q))
			want := renderResult(reference.Exec(q))
			if got != want {
				t.Fatalf("%s: strategy %s: %s\nrecovered:\n%s\nreference:\n%s", ctx, name, q, got, want)
			}
		}
	}
}

// workload returns the statement stream of the crash test: DDL, appends,
// point updates, tail deletes, view creation (simple, partitioned, plain,
// AVG), REFRESH, and a couple of statements that fail on purpose — the
// log-before-apply rule logs them too, and replay must tolerate their
// deterministic re-failure.
func workload() []string {
	stmts := []string{
		`CREATE TABLE seq (pos INTEGER, val INTEGER)`,
		`CREATE UNIQUE INDEX seq_pk ON seq (pos)`,
		`CREATE TABLE pt (grp VARCHAR(8), pos INTEGER, val INTEGER)`,
	}
	for i := 1; i <= 30; i++ {
		stmts = append(stmts, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, (i*37)%100-50))
	}
	for g := 0; g < 3; g++ {
		for i := 1; i <= 8; i++ {
			stmts = append(stmts, fmt.Sprintf(`INSERT INTO pt VALUES ('g%d', %d, %d)`, g, i, (g*13+i*7)%40))
		}
	}
	stmts = append(stmts,
		`CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
		`CREATE MATERIALIZED VIEW matpt AS SELECT grp, pos, MAX(val) OVER (PARTITION BY grp ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM pt`,
		`CREATE MATERIALIZED VIEW plainv AS SELECT pos, val FROM seq WHERE pos <= 5`,
		`CREATE MATERIALIZED VIEW avgv AS SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
		// Statements that fail by design: duplicate index name, duplicate
		// unique key, unknown table.
		`CREATE UNIQUE INDEX seq_pk ON seq (val)`,
		`INSERT INTO seq VALUES (1, 999)`,
		`INSERT INTO no_such_table VALUES (1)`,
	)
	// Density-preserving maintenance traffic: value updates and appends.
	for i := 0; i < 20; i++ {
		pos := 1 + (i*11)%30
		stmts = append(stmts, fmt.Sprintf(`UPDATE seq SET val = %d WHERE pos = %d`, i-10, pos))
	}
	for i := 31; i <= 36; i++ {
		stmts = append(stmts, fmt.Sprintf(`INSERT INTO seq VALUES (%d, %d)`, i, i%9))
	}
	stmts = append(stmts,
		// Delete of the trailing position is density-preserving too.
		`DELETE FROM seq WHERE pos = 36`,
		`REFRESH MATERIALIZED VIEW avgv`,
		`UPDATE pt SET val = 77 WHERE pos = 3`,
	)
	return stmts
}

// applyBoth feeds one statement to both engines and insists they agree on
// success/failure.
func applyBoth(t *testing.T, durable, reference *engine.Engine, sql string) {
	t.Helper()
	_, errD := durable.Exec(sql)
	_, errR := reference.Exec(sql)
	if (errD == nil) != (errR == nil) {
		t.Fatalf("engines diverged applying %q: durable err=%v, reference err=%v", sql, errD, errR)
	}
}

// TestCrashRecoveryDifferential kills the durable engine at every interesting
// point of the workload (via subtests at a few cut positions) and checks the
// recovered state against the reference. CheckpointEvery is small so cuts
// land before, between, and after automatic checkpoints — recovery exercises
// snapshot-only, snapshot+tail, and tail-only paths.
func TestCrashRecoveryDifferential(t *testing.T) {
	stmts := workload()
	cuts := []int{3, 17, 40, 55, len(stmts)}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			mgr, err := Open(Options{Dir: dir, Sync: SyncOff, CheckpointEvery: 13}, engine.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !mgr.Recovery().Fresh {
				t.Fatalf("fresh dir reported %+v", mgr.Recovery())
			}
			reference := engine.New(engine.DefaultOptions())
			for _, sql := range stmts[:cut] {
				applyBoth(t, mgr.Engine(), reference, sql)
			}
			if err := mgr.Err(); err != nil {
				t.Fatalf("automatic checkpoint failed: %v", err)
			}
			// Crash: abandon the manager. No Close, no final checkpoint —
			// disk holds whatever the WAL policy already wrote.
			mgr = nil

			re, err := Open(Options{Dir: dir, Sync: SyncOff, CheckpointEvery: 13}, engine.DefaultOptions())
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer re.Close()
			compareEngines(t, re.Engine(), reference, fmt.Sprintf("cut=%d", cut))

			// The recovered engine must keep working: apply the rest of the
			// workload to both and compare again.
			for _, sql := range stmts[cut:] {
				applyBoth(t, re.Engine(), reference, sql)
			}
			compareEngines(t, re.Engine(), reference, fmt.Sprintf("cut=%d post-recovery traffic", cut))
		})
	}
}

// TestCrashRecoveryStaleView crashes with a view deliberately left stale and
// checks the recovered engine reproduces the staleness — including the
// refusal to answer derivation queries — and that REFRESH heals it.
func TestCrashRecoveryStaleView(t *testing.T) {
	dir := t.TempDir()
	// Pin eager maintenance: the test asserts staleness appears inside the
	// DML itself, which deferred mode postpones to the next drain.
	engOpts := engine.DefaultOptions()
	engOpts.ViewMaintenance = "eager"
	mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	reference := engine.New(engOpts)
	setup := []string{
		`CREATE TABLE seq (pos INTEGER, val INTEGER)`,
		`INSERT INTO seq VALUES (1, 10), (2, 20), (3, 30), (4, 40)`,
		`CREATE MATERIALIZED VIEW matseq AS SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`,
		// Deleting a middle position breaks density: the view goes stale.
		`DELETE FROM seq WHERE pos = 2`,
	}
	for _, sql := range setup {
		applyBoth(t, mgr.Engine(), reference, sql)
	}
	if !mgr.Engine().Views.Stale("matseq") {
		t.Fatal("setup failed to make matseq stale")
	}
	// Force the stale flag through a checkpoint so it round-trips the
	// snapshot, not just the replay path.
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mgr = nil // crash

	re, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if !re.Engine().Views.Stale("matseq") {
		t.Fatal("recovered engine lost the stale flag")
	}
	// Derivation queries must refuse on both engines, identically.
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
	got := renderResult(re.Engine().Exec(q))
	want := renderResult(reference.Exec(q))
	if got != want {
		t.Fatalf("stale-view behavior diverged:\nrecovered: %s\nreference: %s", got, want)
	}
	// Healing: restore density, refresh, compare.
	heal := []string{
		`UPDATE seq SET pos = 2 WHERE pos = 4`,
		`REFRESH MATERIALIZED VIEW matseq`,
	}
	for _, sql := range heal {
		applyBoth(t, re.Engine(), reference, sql)
	}
	compareEngines(t, re.Engine(), reference, "after heal")
}

// TestTornTailRecovery physically tears the WAL tail — as a kill -9 mid-
// write would — and checks recovery comes up at the last complete record
// instead of failing to start.
func TestTornTailRecovery(t *testing.T) {
	for _, tear := range []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"partial final record", func(data []byte) []byte { return data[:len(data)-5] }},
		{"corrupt final record", func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)-2] ^= 0xFF
			return out
		}},
		{"garbage appended", func(data []byte) []byte {
			return append(append([]byte(nil), data...), 0xDE, 0xAD, 0xBE, 0xEF)
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			e := mgr.Engine()
			if _, err := e.Exec(`CREATE TABLE t (a INTEGER)`); err != nil {
				t.Fatal(err)
			}
			const rows = 10
			for i := 1; i <= rows; i++ {
				if _, err := e.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)); err != nil {
					t.Fatal(err)
				}
			}
			mgr.log.Sync()
			mgr = nil // crash without checkpoint

			segs, err := listSegments(dir)
			if err != nil || len(segs) == 0 {
				t.Fatalf("segments: %v err=%v", segs, err)
			}
			last := segs[len(segs)-1].path
			data, err := os.ReadFile(last)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(last, tear.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			re, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
			if err != nil {
				t.Fatalf("torn tail prevented startup: %v", err)
			}
			defer re.Close()
			res, err := re.Engine().Exec(`SELECT COUNT(*) AS c FROM t`)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Rows[0][0].Int()
			wantMin := int64(rows - 1) // at most the final record is lost
			if tear.name == "garbage appended" {
				wantMin = rows // nothing legitimate was damaged
			}
			if got < wantMin || got > rows {
				t.Fatalf("recovered %d rows, want in [%d, %d]", got, wantMin, rows)
			}
			// The tear is gone after the recovery-ending checkpoint: a second
			// open replays nothing and sees the same state.
			re2, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			rec := re2.Recovery()
			if rec.RecordsReplayed != 0 || rec.ReplayErrors != 0 {
				t.Fatalf("second recovery not clean: %+v", rec)
			}
			res2, err := re2.Engine().Exec(`SELECT COUNT(*) AS c FROM t`)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Rows[0][0].Int() != got {
				t.Fatalf("second recovery sees %d rows, first saw %d", res2.Rows[0][0].Int(), got)
			}
		})
	}
}

// TestRecoveryCacheFreshness is the recovery × caching regression: a query
// cached (plan and result) before the crash must never be answered from the
// pre-crash cache after recovery — the recovered engine rebuilds state with
// fresh version counters and an empty cache, and this test pins that down.
func TestRecoveryCacheFreshness(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := mgr.Engine()
	for _, sql := range []string{
		`CREATE TABLE t (a INTEGER, b INTEGER)`,
		`INSERT INTO t VALUES (1, 100)`,
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT a, b FROM t`
	if _, err := e.Exec(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(q); err != nil { // second run is served from cache
		t.Fatal(err)
	}
	if e.PlanCacheStats().Hits == 0 {
		t.Fatal("setup failed to exercise the result cache")
	}
	// Checkpoint, then mutate (the mutation lives only in the WAL tail).
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`UPDATE t SET b = 200 WHERE a = 1`); err != nil {
		t.Fatal(err)
	}
	mgr = nil // crash

	re, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovery()
	if !rec.SnapshotLoaded || rec.RecordsReplayed == 0 {
		t.Fatalf("expected snapshot+tail recovery, got %+v", rec)
	}
	res, err := re.Engine().Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Int() != 200 {
		t.Fatalf("recovered engine served a pre-crash answer: %v", res.Rows)
	}
}

// TestRecoveryReplaysThroughCheckpointCrashWindow simulates a crash between
// the snapshot rename and the WAL truncation (checkpoint step 2→3): the
// snapshot exists AND the covered segments still do. Recovery must not
// double-apply the covered records.
func TestRecoveryReplaysThroughCheckpointCrashWindow(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := mgr.Engine()
	for _, sql := range []string{
		`CREATE TABLE t (a INTEGER)`,
		`INSERT INTO t VALUES (1)`,
		`INSERT INTO t VALUES (2)`,
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-run checkpoint step 2 only: snapshot written, WAL left alone.
	snap, err := captureState(e, mgr.log.LastLSN())
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	mgr.log.Sync()
	mgr = nil // crash in the checkpoint window

	re, err := Open(Options{Dir: dir, Sync: SyncOff}, engine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovery()
	if !rec.SnapshotLoaded || rec.RecordsReplayed != 0 {
		t.Fatalf("covered records were replayed: %+v", rec)
	}
	res, err := re.Engine().Exec(`SELECT COUNT(*) AS c FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("recovered %d rows, want 2 (no double-apply)", res.Rows[0][0].Int())
	}
}
