package exec

import (
	"bytes"
	"math"
	"slices"
	"sync"

	"rfview/internal/sqltypes"
)

// This file is the shared ordering fast path of the executor: both exec.Sort
// and Window.computePartition sort row sets by normalizing the ORDER BY keys
// into memcomparable byte strings once per row and comparing with
// bytes.Compare, instead of paying an interface-dispatched Expr.Eval plus an
// error-checked sqltypes.Compare per key on every one of the N·log N
// comparisons. Columns the encoding cannot represent faithfully (Int/Float
// mixes, NaN floats) fall back to a Compare-based sort whose key types were
// already validated, so no error can surface mid-sort — fixing the old
// comparator bug where a failed Compare kept sorting on garbage ordering and
// was only checked after sort.SliceStable returned.

// sortScratch holds the reusable buffers of one normalization run. Buffers
// are pooled (see scratchPool) because partition-parallel windows run many
// computePartition calls concurrently and each used to allocate its own key
// matrix and permutation.
type sortScratch struct {
	datums []sqltypes.Datum // flat n×k key matrix, row-major
	types  []sqltypes.Type  // first non-NULL type per key column
	enc    [][]byte         // per-row normalized keys, slices into buf
	buf    []byte           // arena backing enc
	offs   []int            // per-row start offsets into buf
	perm   []int
	tmp    []int
}

// scratchPool recycles per-sort (and per-partition, see partScratch) buffers
// across operator executions and worker goroutines.
var sortScratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

func getSortScratch() *sortScratch  { return sortScratchPool.Get().(*sortScratch) }
func putSortScratch(s *sortScratch) { sortScratchPool.Put(s) }

// grow resizes a slice to length n, reusing capacity when it suffices.
// Retained elements are stale scratch; callers overwrite before reading.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// sortRowsByKeys stably sorts idx — indices into rows — by the given keys,
// in place. With vectorize set it normalizes every key into an
// order-preserving byte string and sorts by bytes.Compare; when a key column
// defeats the encoding (an Int/Float mix, a NaN) or vectorize is off, it
// sorts by sqltypes.Compare over the pre-evaluated key matrix. Either way
// every key is evaluated and type-checked once per row before the sort runs:
// incomparable key types (e.g. INTEGER vs VARCHAR produced by a CASE) return
// the type error here, never from inside the sort comparator. Returns
// whether the normalized path was taken.
func sortRowsByKeys(rows []sqltypes.Row, idx []int, keys []SortKey, sc *sortScratch, vectorize bool) (bool, error) {
	n, k := len(idx), len(keys)
	if n < 2 || k == 0 {
		return vectorize, nil
	}
	// Evaluate every key for every row in one pass; the matrix is the input
	// to both sort paths and to validation.
	if cap(sc.datums) < n*k {
		sc.datums = make([]sqltypes.Datum, n*k)
	} else {
		sc.datums = sc.datums[:n*k]
	}
	for i, ri := range idx {
		row := rows[ri]
		base := i * k
		for ki := range keys {
			v, err := keys[ki].Expr.Eval(row)
			if err != nil {
				return false, err
			}
			sc.datums[base+ki] = v
		}
	}
	// Validate each key column: a single non-NULL type (or a numeric mix)
	// sorts; anything else is a type error, surfaced before any ordering
	// work. The numeric-mix and NaN cases stay comparable but defeat the
	// byte encoding, so they force the comparator path.
	if cap(sc.types) < k {
		sc.types = make([]sqltypes.Type, k)
	} else {
		sc.types = sc.types[:k]
	}
	encodable := vectorize
	for ki := 0; ki < k; ki++ {
		first := sqltypes.Null
		for i := 0; i < n; i++ {
			d := sc.datums[i*k+ki]
			t := d.Typ()
			if t == sqltypes.Null {
				continue
			}
			if t == sqltypes.Float && math.IsNaN(d.Float()) {
				encodable = false // NaN: not a total order under Compare
			}
			if first == sqltypes.Null {
				first = t
				continue
			}
			if t == first {
				continue
			}
			if !sqltypes.Comparable(first, t) {
				return false, &sqltypes.ErrTypeMismatch{Op: "compare", Left: first, Right: t}
			}
			encodable = false // Int/Float mix: exact int pairs vs float cross pairs
		}
		sc.types[ki] = first
	}

	sc.perm = grow(sc.perm, n)
	for i := range sc.perm {
		sc.perm[i] = i
	}

	if encodable {
		// Normalize: one concatenated memcomparable key per row, packed into
		// a single arena so the encoding allocates at most once per run.
		sc.buf = sc.buf[:0]
		sc.offs = grow(sc.offs, n+1)
		for i := 0; i < n; i++ {
			sc.offs[i] = len(sc.buf)
			base := i * k
			for ki := range keys {
				sc.buf = sqltypes.EncodeKey(sc.buf, sc.datums[base+ki], keys[ki].Desc)
			}
		}
		sc.offs[n] = len(sc.buf)
		if cap(sc.enc) < n {
			sc.enc = make([][]byte, n)
		} else {
			sc.enc = sc.enc[:n]
		}
		for i := 0; i < n; i++ {
			sc.enc[i] = sc.buf[sc.offs[i]:sc.offs[i+1]]
		}
		enc := sc.enc
		slices.SortStableFunc(sc.perm, func(a, b int) int {
			return bytes.Compare(enc[a], enc[b])
		})
	} else {
		datums, perm := sc.datums, sc.perm
		slices.SortStableFunc(perm, func(a, b int) int {
			ba, bb := a*k, b*k
			for ki := range keys {
				// Validation above guarantees Compare cannot fail here.
				cmp, _ := sqltypes.Compare(datums[ba+ki], datums[bb+ki])
				if cmp == 0 {
					continue
				}
				if keys[ki].Desc {
					return -cmp
				}
				return cmp
			}
			return 0
		})
	}

	sc.tmp = grow(sc.tmp, n)
	for i, pi := range sc.perm {
		sc.tmp[i] = idx[pi]
	}
	copy(idx, sc.tmp)
	return encodable, nil
}
