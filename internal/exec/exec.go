// Package exec implements the physical operators of the rfview engine in the
// Volcano (open/next/close) style: scans, filters, projections, three join
// algorithms (nested-loop, index nested-loop, hash), sorting, hash
// aggregation, set operations, and the Window operator that provides the
// "native reporting functionality inside the database engine" whose benefit
// Table 1 of the paper measures.
package exec

import (
	"context"
	"fmt"
	"strings"

	rferrors "rfview/errors"
	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// Operator is a Volcano-style iterator.
type Operator interface {
	// Schema describes the rows this operator produces.
	Schema() *expr.Schema
	// Open prepares the operator (and its children) for iteration.
	Open() error
	// Next returns the next row, or (nil, nil) at end of stream.
	Next() (sqltypes.Row, error)
	// Close releases resources. Safe to call after a failed Open.
	Close() error
	// Describe returns a one-line plan label (for EXPLAIN).
	Describe() string
	// Children returns the child operators (for EXPLAIN).
	Children() []Operator
}

// Collect drains an operator into a slice, handling open/close.
func Collect(op Operator) ([]sqltypes.Row, error) {
	return CollectCtx(context.Background(), op)
}

// cancelCheckEvery is how many rows CollectCtx drains between context
// checks: frequent enough that cancellation lands within milliseconds on any
// realistic row rate, rare enough to keep the per-row cost at one counter
// decrement.
const cancelCheckEvery = 128

// rowsHandoff is implemented by fully-materializing operators (Sort, Window,
// Restore) that can surrender their buffered output wholesale. CollectCtx
// takes the slice instead of re-draining row by row — a stacked window plan
// materializes once per operator either way, but the hand-off skips the
// per-row Next calls and the append regrowth of the copy.
type rowsHandoff interface {
	// takeRows returns the operator's materialized output and relinquishes
	// ownership of it, or nil when the operator is not serving from memory
	// (e.g. a sort streaming an external merge).
	takeRows() []sqltypes.Row
}

// CollectCtx is Collect with cooperative cancellation: the context is checked
// before opening and every cancelCheckEvery rows. A cancelled context aborts
// the drain, closes the operator, and returns ErrCancelled (wrapping the
// context's own error).
func CollectCtx(ctx context.Context, op Operator) ([]sqltypes.Row, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	if h, ok := op.(rowsHandoff); ok {
		if rows := h.takeRows(); rows != nil {
			if err := op.Close(); err != nil {
				return nil, err
			}
			return rows, nil
		}
	}
	var out []sqltypes.Row
	until := cancelCheckEvery
	for {
		if until--; until <= 0 {
			until = cancelCheckEvery
			if err := ctxErr(ctx); err != nil {
				op.Close()
				return nil, err
			}
		}
		row, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if row == nil {
			break
		}
		out = append(out, row)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ctxErr maps a cancelled context onto the engine's coded error surface; nil
// contexts and live contexts cost one branch.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return rferrors.Wrap(rferrors.CodeCancelled, err)
	}
	return nil
}

// FormatPlan renders an operator tree as an indented EXPLAIN listing.
func FormatPlan(op Operator) string {
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), o.Describe())
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}

// PlanContains reports whether any operator in the tree has a Describe()
// line containing the given substring — the plan-shape assertion helper used
// by the Fig. 2/4/10/13 pattern tests.
func PlanContains(op Operator, substr string) bool {
	if strings.Contains(op.Describe(), substr) {
		return true
	}
	for _, c := range op.Children() {
		if PlanContains(c, substr) {
			return true
		}
	}
	return false
}

// CountOps counts operators in the tree whose Describe() line contains the
// substring.
func CountOps(op Operator, substr string) int {
	n := 0
	if strings.Contains(op.Describe(), substr) {
		n++
	}
	for _, c := range op.Children() {
		n += CountOps(c, substr)
	}
	return n
}
