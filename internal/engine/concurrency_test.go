package engine

import (
	"fmt"
	"sync"
	"testing"
)

// derivedQ rides the MaxOA rewrite: the (3,3) window is wider than the
// materialized (2,2) view, so every read goes through derivation.
const derivedQ = `SELECT pos, SUM(val) OVER (ORDER BY pos
  ROWS BETWEEN 3 PRECEDING AND 3 FOLLOWING) AS s FROM seq`

// checkAllOnesWindow asserts a (3,3) window-sum result over an all-ones
// dense sequence is internally consistent: positions 1…n each appear once
// and every sum equals its clipped window width. Any torn read — a base row
// visible without its view band, a half-applied refresh — breaks this.
func checkAllOnesWindow(rows map[int64]float64) error {
	n := int64(len(rows))
	if n == 0 {
		return fmt.Errorf("empty result")
	}
	for p := int64(1); p <= n; p++ {
		s, ok := rows[p]
		if !ok {
			return fmt.Errorf("position %d missing from %d-row result", p, n)
		}
		lo, hi := p-3, p+3
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		if want := float64(hi - lo + 1); s != want {
			return fmt.Errorf("pos %d: sum %v, want %v (n=%d)", p, s, want, n)
		}
	}
	return nil
}

// TestConcurrentReadersWithWriter is the locking-discipline stress test: N
// reader goroutines issue view-derived window queries while one writer
// appends rows and periodically refreshes the view. Run under -race. Every
// read must observe a consistent snapshot — entirely pre- or post- some
// write — which checkAllOnesWindow verifies per result.
func TestConcurrentReadersWithWriter(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 50, func(i int) int64 { return 1 })
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 2 FOLLOWING) AS val FROM seq`)
	res := mustExec(t, e, derivedQ)
	if res.Derivation == nil {
		t.Fatal("stress query must exercise the derivation path")
	}

	const (
		readers = 4
		inserts = 100
	)
	done := make(chan struct{})
	errc := make(chan error, readers+1)
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Alternate the derived query with an exact-width one so
				// both the rewrite and the exact-match path run hot.
				q := derivedQ
				if i%2 == 1 && r%2 == 1 {
					q = windowQ
				}
				res, err := e.Exec(q)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				pairs := make(map[int64]float64, len(res.Rows))
				for _, row := range res.Rows {
					pairs[row[0].Int()] = row[1].Float()
				}
				if q == derivedQ {
					if err := checkAllOnesWindow(pairs); err != nil {
						errc <- fmt.Errorf("reader %d: inconsistent read: %v", r, err)
						return
					}
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < inserts; i++ {
			pos := 51 + i
			if _, err := e.Exec(fmt.Sprintf(`INSERT INTO seq (pos, val) VALUES (%d, 1)`, pos)); err != nil {
				errc <- fmt.Errorf("writer: %v", err)
				return
			}
			if i%15 == 14 {
				if _, err := e.Exec(`REFRESH MATERIALIZED VIEW mv`); err != nil {
					errc <- fmt.Errorf("writer refresh: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Steady state: all 150 rows present, view fresh, derivation still on.
	res = mustExec(t, e, derivedQ)
	if len(res.Rows) != 150 || res.Derivation == nil {
		t.Fatalf("final state: %d rows, derivation=%v", len(res.Rows), res.Derivation != nil)
	}
	pairs := make(map[int64]float64, len(res.Rows))
	for _, row := range res.Rows {
		pairs[row[0].Int()] = row[1].Float()
	}
	if err := checkAllOnesWindow(pairs); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCacheChurn hammers the plan cache from many goroutines with
// overlapping query sets while a writer invalidates entries, catching data
// races in the cache itself and in shared cached plans/results.
func TestConcurrentCacheChurn(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 30, func(i int) int64 { return int64(i) })
	// Room for every query: entries live long enough to be revalidated and
	// invalidated by the writer (eviction itself is covered in qcache).
	e.SetPlanCacheCapacity(8)

	queries := []string{
		`SELECT pos, val FROM seq`,
		`SELECT pos, val FROM seq WHERE pos <= 10`,
		`SELECT pos, val FROM seq WHERE pos > 5`,
		`SELECT COUNT(pos) AS n FROM seq`,
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS s FROM seq`,
		`SELECT pos, val FROM seq WHERE pos = 7`,
	}
	// Every worker mixes reads with the occasional INSERT, so invalidation
	// is exercised under any goroutine schedule: a worker's own post-INSERT
	// re-read of a query it cached earlier must revalidate and miss.
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				sql := queries[(g+i)%len(queries)]
				if i%20 == 19 {
					sql = fmt.Sprintf(`INSERT INTO seq (pos, val) VALUES (%d, %d)`, 100+g*150+i, i)
				}
				if _, err := e.Exec(sql); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := e.PlanCacheStats()
	if st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("churn must exercise both hits and invalidations: %+v", st)
	}
}
