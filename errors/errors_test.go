package errors

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelIsMatching(t *testing.T) {
	cases := []struct {
		err      error
		sentinel *Error
	}{
		{New(CodeParse, "bad token at %d", 7), ErrParse},
		{New(CodeUnknownTable, "no such table"), ErrUnknownTable},
		{New(CodeUnknownView, "no such view"), ErrUnknownView},
		{New(CodeStaleView, "view is stale"), ErrStaleView},
		{New(CodeNotDerivable, "window too wide"), ErrNotDerivable},
		{New(CodeCancelled, "interrupted"), ErrCancelled},
		{New(CodeUnsupported, "no UPDATE of views"), ErrUnsupported},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("errors.Is(%v, %v) = false, want true", c.err, c.sentinel)
		}
	}
	// Distinct codes must not match.
	if errors.Is(New(CodeParse, "x"), ErrUnknownTable) {
		t.Errorf("parse error matched ErrUnknownTable")
	}
}

func TestIsSurvivesWrapping(t *testing.T) {
	base := New(CodeStaleView, "view %q stale", "mv1")
	wrapped := fmt.Errorf("refresh pipeline: %w", fmt.Errorf("step 3: %w", base))
	if !errors.Is(wrapped, ErrStaleView) {
		t.Fatalf("errors.Is through two fmt.Errorf layers = false")
	}
	if CodeOf(wrapped) != CodeStaleView {
		t.Fatalf("CodeOf(wrapped) = %q, want %q", CodeOf(wrapped), CodeStaleView)
	}
}

func TestWrapKeepsCause(t *testing.T) {
	cause := errors.New("disk on fire")
	err := Wrap(CodeInternal, cause)
	if !errors.Is(err, cause) {
		t.Fatalf("wrapped cause unreachable via errors.Is")
	}
	if err.Error() != "disk on fire" {
		t.Fatalf("Error() = %q", err.Error())
	}
	if werr := Wrapf(CodeParse, cause, "parsing %q", "SELECT"); werr.Error() != `parsing "SELECT": disk on fire` {
		t.Fatalf("Wrapf Error() = %q", werr.Error())
	}
	if Wrap(CodeParse, nil) != nil || Wrapf(CodeParse, nil, "x") != nil {
		t.Fatalf("wrapping nil must return nil")
	}
}

func TestCodeOf(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeOK},
		{New(CodeParse, "x"), CodeParse},
		{Wrap(CodeCancelled, errors.New("ctx")), CodeCancelled},
		{context.Canceled, CodeCancelled},
		{context.DeadlineExceeded, CodeCancelled},
		{fmt.Errorf("outer: %w", context.Canceled), CodeCancelled},
		{errors.New("plain"), CodeInternal},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.want {
			t.Errorf("CodeOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestFromCodeRoundTrip is the wire-protocol contract: code → FromCode must
// satisfy the same sentinel checks as the original engine error.
func TestFromCodeRoundTrip(t *testing.T) {
	for _, sentinel := range []*Error{
		ErrParse, ErrUnknownTable, ErrUnknownView, ErrStaleView,
		ErrNotDerivable, ErrCancelled, ErrUnsupported,
	} {
		orig := New(sentinel.Code, "engine-side detail")
		wire := string(CodeOf(orig)) // what the server puts in Response.Code
		back := FromCode(Code(wire), "server: "+orig.Error())
		if !errors.Is(back, sentinel) {
			t.Errorf("code %q: reconstructed error does not match sentinel", wire)
		}
	}
	// Unknown and empty codes degrade to internal, never to a false match.
	for _, raw := range []string{"", "bogus"} {
		back := FromCode(Code(raw), "m")
		if CodeOf(back) != CodeInternal {
			t.Errorf("FromCode(%q) code = %q, want internal", raw, CodeOf(back))
		}
		if errors.Is(back, ErrParse) || errors.Is(back, ErrCancelled) {
			t.Errorf("FromCode(%q) matched a specific sentinel", raw)
		}
	}
}
