package engine

import (
	"rfview/internal/catalog"
	"rfview/internal/expr"
	"rfview/internal/sqlparser"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// compiledExpr aliases expr.Expr for the DML helpers.
type compiledExpr = expr.Expr

func exprSchema() *expr.Schema { return expr.NewSchema() }

func tableSchema(tbl *catalog.Table, ref string) *expr.Schema {
	cols := make([]expr.ColInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = expr.ColInfo{Table: ref, Name: c.Name, Type: c.Type}
	}
	// Also make unqualified lookups work by using the table's own name.
	_ = ref
	return expr.NewSchema(cols...)
}

func compileAgainst(e sqlparser.Expr, schema *expr.Schema) (expr.Expr, error) {
	return expr.Compile(e, schema)
}

// compileConst evaluates a row-less expression (VALUES entries).
func compileConst(e sqlparser.Expr, schema *expr.Schema) (sqltypes.Datum, error) {
	compiled, err := expr.Compile(e, schema)
	if err != nil {
		return sqltypes.NullDatum, err
	}
	return compiled.Eval(nil)
}

func truthy(d sqltypes.Datum) bool { return expr.Truthy(d) }

// coerce casts a datum to the declared column type, keeping NULLs.
func coerce(d sqltypes.Datum, to sqltypes.Type) (sqltypes.Datum, error) {
	if d.IsNull() {
		return d, nil
	}
	return sqltypes.Cast(d, to)
}

// pointLookupRows recognizes WHERE shapes of the form `col = literal` (alone
// or as a conjunct) with an index on col, and returns the candidate rows from
// an index probe, visibility-filtered at the given snapshot. ok=false means
// "no usable index"; callers fall back to a snapshot scan. The full predicate
// is still evaluated against every candidate, so the fast path never changes
// semantics.
func pointLookupRows(tbl *catalog.Table, where sqlparser.Expr, at txn.Snapshot) ([]storage.RowID, []sqltypes.Row, bool) {
	var tryConjunct func(e sqlparser.Expr) ([]storage.RowID, []sqltypes.Row, bool)
	tryConjunct = func(e sqlparser.Expr) ([]storage.RowID, []sqltypes.Row, bool) {
		switch x := e.(type) {
		case *sqlparser.AndExpr:
			if ids, rows, ok := tryConjunct(x.Left); ok {
				return ids, rows, true
			}
			return tryConjunct(x.Right)
		case *sqlparser.ComparisonExpr:
			if x.Op != "=" {
				return nil, nil, false
			}
			colRef, lit := x.Left, x.Right
			if _, isLit := colRef.(*sqlparser.Literal); isLit {
				colRef, lit = x.Right, x.Left
			}
			cr, ok := colRef.(*sqlparser.ColumnRef)
			if !ok {
				return nil, nil, false
			}
			l, ok := lit.(*sqlparser.Literal)
			if !ok {
				return nil, nil, false
			}
			ord := tbl.ColumnIndex(cr.Name)
			if ord < 0 {
				return nil, nil, false
			}
			h := tbl.Heap.IndexOn([]int{ord})
			if h == nil {
				return nil, nil, false
			}
			key, err := coerce(l.Val, tbl.Columns[ord].Type)
			if err != nil || key.IsNull() {
				return nil, nil, false
			}
			var ids []storage.RowID
			var rows []sqltypes.Row
			tbl.Heap.LookupAt(h, sqltypes.Row{key}, at, func(id storage.RowID, row sqltypes.Row) bool {
				ids = append(ids, id)
				rows = append(rows, row)
				return true
			})
			return ids, rows, true
		default:
			return nil, nil, false
		}
	}
	if where == nil {
		return nil, nil, false
	}
	return tryConjunct(where)
}
