package exec

import (
	"fmt"

	"rfview/internal/catalog"
	"rfview/internal/expr"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// JoinKind distinguishes the join semantics the executor supports.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
)

func (k JoinKind) String() string {
	if k == JoinLeftOuter {
		return "LeftOuter"
	}
	return "Inner"
}

// NestedLoopJoin is the fallback join: it materializes the right input and
// evaluates an arbitrary predicate for every (left, right) pair — O(|L|·|R|).
// This is the operator the paper's Table 1 "self join method / no index"
// column exercises, and the only algorithm applicable to the *disjunctive*
// MaxOA/MinOA join predicates of Table 2 (an OR of unrelated equality
// conditions defeats both hash and index strategies).
type NestedLoopJoin struct {
	Left, Right Operator
	Kind        JoinKind
	Pred        expr.Expr // nil = cross join

	schema  *expr.Schema
	right   []sqltypes.Row
	cur     sqltypes.Row
	rpos    int
	matched bool
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(left, right Operator, kind JoinKind, pred expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{
		Left: left, Right: right, Kind: kind, Pred: pred,
		schema: expr.Concat(left.Schema(), right.Schema()),
	}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *expr.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.right = rows
	j.cur = nil
	j.rpos = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (sqltypes.Row, error) {
	for {
		if j.cur == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.cur = row
			j.rpos = 0
			j.matched = false
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			combined := combineRows(j.cur, r)
			if j.Pred != nil {
				v, err := j.Pred.Eval(combined)
				if err != nil {
					return nil, err
				}
				if !expr.Truthy(v) {
					continue
				}
			}
			j.matched = true
			return combined, nil
		}
		// Right side exhausted for this left row.
		left := j.cur
		matched := j.matched
		j.cur = nil
		if j.Kind == JoinLeftOuter && !matched {
			return combineRows(left, nullRow(len(j.Right.Schema().Cols))), nil
		}
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	return j.Left.Close()
}

// Describe implements Operator.
func (j *NestedLoopJoin) Describe() string {
	pred := "true"
	if j.Pred != nil {
		pred = j.Pred.String()
	}
	return fmt.Sprintf("NestedLoopJoin (%s) ON %s", j.Kind, pred)
}

// Children implements Operator.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// IndexNestedLoopJoin probes an ordered index of a stored table with keys
// computed from each outer row. Several key expressions model the Fig. 2/4
// IN-list pattern (s1.pos IN (s2.pos−1, s2.pos, s2.pos+1)): each outer row
// probes once per key expression. This is the access path that makes the
// paper's "self join method with primary key index" column roughly linear.
type IndexNestedLoopJoin struct {
	Outer    Operator
	Inner    *catalog.Table
	InnerRef string
	Handle   *storage.IndexHandle
	// Keys are evaluated against the outer row; each produces one probe key
	// for the (single-column) index.
	Keys []expr.Expr
	// Residual is evaluated over the combined row (outer ++ inner).
	Residual expr.Expr
	Kind     JoinKind
	// EmitOuterFirst controls output column order: true emits outer++inner,
	// false emits inner++outer (used when the probed table was written on
	// the left of the join in the original query).
	EmitOuterFirst bool
	// Snap, when set, resolves the MVCC snapshot probes read at (shared
	// with every other operator of the statement). Nil probes the latest
	// committed state.
	Snap func() txn.Snapshot

	innerSchema *expr.Schema
	schema      *expr.Schema
	snapshot    txn.Snapshot
	pending     []sqltypes.Row // combined rows waiting to be emitted
	done        bool
}

// NewIndexNestedLoopJoin builds an index nested-loop join.
func NewIndexNestedLoopJoin(outer Operator, inner *catalog.Table, innerRef string,
	handle *storage.IndexHandle, keys []expr.Expr, residual expr.Expr,
	kind JoinKind, emitOuterFirst bool) *IndexNestedLoopJoin {

	innerCols := make([]expr.ColInfo, len(inner.Columns))
	for i, c := range inner.Columns {
		innerCols[i] = expr.ColInfo{Table: innerRef, Name: c.Name, Type: c.Type}
	}
	innerSchema := expr.NewSchema(innerCols...)
	var schema *expr.Schema
	if emitOuterFirst {
		schema = expr.Concat(outer.Schema(), innerSchema)
	} else {
		schema = expr.Concat(innerSchema, outer.Schema())
	}
	return &IndexNestedLoopJoin{
		Outer: outer, Inner: inner, InnerRef: innerRef, Handle: handle,
		Keys: keys, Residual: residual, Kind: kind, EmitOuterFirst: emitOuterFirst,
		innerSchema: innerSchema, schema: schema,
	}
}

// Schema implements Operator.
func (j *IndexNestedLoopJoin) Schema() *expr.Schema { return j.schema }

// Open implements Operator.
func (j *IndexNestedLoopJoin) Open() error {
	j.pending = nil
	j.done = false
	if j.Snap != nil {
		j.snapshot = j.Snap()
	} else {
		j.snapshot = j.Inner.Heap.Latest()
	}
	return j.Outer.Open()
}

// combine places outer and inner parts in output order.
func (j *IndexNestedLoopJoin) combine(outer, inner sqltypes.Row) sqltypes.Row {
	if j.EmitOuterFirst {
		return combineRows(outer, inner)
	}
	return combineRows(inner, outer)
}

// Next implements Operator.
func (j *IndexNestedLoopJoin) Next() (sqltypes.Row, error) {
	for {
		if len(j.pending) > 0 {
			row := j.pending[0]
			j.pending = j.pending[1:]
			return row, nil
		}
		if j.done {
			return nil, nil
		}
		outer, err := j.Outer.Next()
		if err != nil {
			return nil, err
		}
		if outer == nil {
			j.done = true
			continue
		}
		matched := false
		seen := make(map[storage.RowID]bool, len(j.Keys))
		for _, keyExpr := range j.Keys {
			key, err := keyExpr.Eval(outer)
			if err != nil {
				return nil, err
			}
			if key.IsNull() {
				continue // NULL never equals anything
			}
			var probeErr error
			j.Inner.Heap.LookupAt(j.Handle, sqltypes.Row{key}, j.snapshot, func(id storage.RowID, inner sqltypes.Row) bool {
				if seen[id] {
					return true // IN-list probes may overlap
				}
				seen[id] = true
				combined := j.combine(outer, inner)
				if j.Residual != nil {
					v, err := j.Residual.Eval(combined)
					if err != nil {
						probeErr = err
						return false
					}
					if !expr.Truthy(v) {
						return true
					}
				}
				matched = true
				j.pending = append(j.pending, combined)
				return true
			})
			if probeErr != nil {
				return nil, probeErr
			}
		}
		if !matched && j.Kind == JoinLeftOuter {
			j.pending = append(j.pending, j.combine(outer, nullRow(len(j.innerSchema.Cols))))
		}
	}
}

// Close implements Operator.
func (j *IndexNestedLoopJoin) Close() error {
	j.pending = nil
	return j.Outer.Close()
}

// Describe implements Operator.
func (j *IndexNestedLoopJoin) Describe() string {
	keys := make([]string, len(j.Keys))
	for i, k := range j.Keys {
		keys[i] = k.String()
	}
	res := ""
	if j.Residual != nil {
		res = " residual " + j.Residual.String()
	}
	return fmt.Sprintf("IndexNestedLoopJoin (%s) %s.%s probes [%s]%s",
		j.Kind, j.InnerRef, j.Handle.Name, joinTrunc(keys, 6), res)
}

// Children implements Operator.
func (j *IndexNestedLoopJoin) Children() []Operator { return []Operator{j.Outer} }

// HashJoin builds a hash table over the right input keyed by the right key
// expressions and probes it with the left keys. It handles equi-join
// conjuncts, including computed keys such as MOD(pos, k) — the reason the
// UNION-of-simple-predicates variants of Table 2 scale better than the
// disjunctive variants on large sequences.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []expr.Expr
	Residual            expr.Expr
	Kind                JoinKind
	schema              *expr.Schema
	table               map[uint64][]sqltypes.Row
	cur                 sqltypes.Row
	bucket              []sqltypes.Row
	bpos                int
	matched             bool
	rightWidth          int
}

// NewHashJoin builds a hash join (left is the probe side and, for
// JoinLeftOuter, the preserved side).
func NewHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, residual expr.Expr, kind JoinKind) *HashJoin {
	return &HashJoin{
		Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, Kind: kind,
		schema:     expr.Concat(left.Schema(), right.Schema()),
		rightWidth: len(right.Schema().Cols),
	}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *expr.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open() error {
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.table = make(map[uint64][]sqltypes.Row)
	for _, r := range rows {
		h, null, err := hashKeys(j.RightKeys, r)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never match
		}
		j.table[h] = append(j.table[h], r)
	}
	j.cur = nil
	j.bucket = nil
	return j.Left.Open()
}

func hashKeys(keys []expr.Expr, row sqltypes.Row) (uint64, bool, error) {
	h := uint64(1469598103934665603)
	for _, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, true, nil
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, false, nil
}

// Next implements Operator.
func (j *HashJoin) Next() (sqltypes.Row, error) {
	for {
		if j.cur == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.cur = row
			j.matched = false
			h, null, err := hashKeys(j.LeftKeys, row)
			if err != nil {
				return nil, err
			}
			if null {
				j.bucket = nil
			} else {
				j.bucket = j.table[h]
			}
			j.bpos = 0
		}
		for j.bpos < len(j.bucket) {
			r := j.bucket[j.bpos]
			j.bpos++
			// Hash collisions require re-checking key equality.
			eq, err := keysEqualEval(j.LeftKeys, j.cur, j.RightKeys, r)
			if err != nil {
				return nil, err
			}
			if !eq {
				continue
			}
			combined := combineRows(j.cur, r)
			if j.Residual != nil {
				v, err := j.Residual.Eval(combined)
				if err != nil {
					return nil, err
				}
				if !expr.Truthy(v) {
					continue
				}
			}
			j.matched = true
			return combined, nil
		}
		left := j.cur
		matched := j.matched
		j.cur = nil
		if j.Kind == JoinLeftOuter && !matched {
			return combineRows(left, nullRow(j.rightWidth)), nil
		}
	}
}

func keysEqualEval(lks []expr.Expr, lrow sqltypes.Row, rks []expr.Expr, rrow sqltypes.Row) (bool, error) {
	for i := range lks {
		lv, err := lks[i].Eval(lrow)
		if err != nil {
			return false, err
		}
		rv, err := rks[i].Eval(rrow)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() {
			return false, nil
		}
		cmp, err := sqltypes.Compare(lv, rv)
		if err != nil || cmp != 0 {
			return false, err
		}
	}
	return true, nil
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Left.Close()
}

// Describe implements Operator.
func (j *HashJoin) Describe() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	res := ""
	if j.Residual != nil {
		res = " residual " + j.Residual.String()
	}
	return fmt.Sprintf("HashJoin (%s) ON %s%s", j.Kind, joinTrunc(parts, 6), res)
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

func combineRows(a, b sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func nullRow(n int) sqltypes.Row {
	return make(sqltypes.Row, n) // zero Datum is NULL
}
