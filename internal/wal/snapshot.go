package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A snapshot is the full engine state — catalog schema, table heaps, index
// definitions, materialized-view definitions and staleness — serialized as
// one checksummed JSON document. Snapshots are written to a temp file and
// atomically renamed into place, so a crash mid-write leaves the previous
// snapshot (and the full WAL) intact; only after the rename is durable does
// the checkpoint truncate the log.

const snapMagic = "RFSNAP01"

// Snapshot is the serialized engine state.
type Snapshot struct {
	// LSN is the last WAL record folded into this state; recovery replays
	// records with larger LSNs.
	LSN uint64 `json:"lsn"`
	// Tables holds every heap — base tables and view backing tables alike —
	// in sorted name order.
	Tables []SnapTable `json:"tables"`
	// Indexes holds every index definition; they are rebuilt from the
	// restored heaps rather than serialized structurally.
	Indexes []SnapIndex `json:"indexes"`
	// MatViews holds the materialized-view metadata; maintainer state is
	// reconstructed from the restored base tables (the engine's determinism
	// again), or deferred to REFRESH for stale views.
	MatViews []SnapMatView `json:"matviews"`
}

// SnapColumn is one column of a dumped schema.
type SnapColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

// SnapTable is one dumped heap.
type SnapTable struct {
	Name    string        `json:"name"`
	Columns []SnapColumn  `json:"columns"`
	Rows    [][]SnapDatum `json:"rows"`
}

// SnapDatum serializes one sqltypes.Datum exactly: integers (and bools and
// dates) through I, floats through their IEEE-754 bits (JSON number text
// would round-trip, but bit-exactness is simpler to trust), strings through
// S.
type SnapDatum struct {
	T uint8  `json:"t"`
	I int64  `json:"i,omitempty"`
	F uint64 `json:"f,omitempty"`
	S string `json:"s,omitempty"`
}

// SnapIndex is one dumped index definition.
type SnapIndex struct {
	Name    string   `json:"name"`
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
	Unique  bool     `json:"unique"`
	Ordered bool     `json:"ordered"`
}

// SnapWindow mirrors catalog.WindowSpec.
type SnapWindow struct {
	Cumulative bool `json:"cumulative"`
	Preceding  int  `json:"preceding"`
	Following  int  `json:"following"`
}

// SnapMatView is one dumped materialized view.
type SnapMatView struct {
	Name       string     `json:"name"`
	Kind       uint8      `json:"kind"`
	Backing    string     `json:"backing"`
	BaseTable  string     `json:"base_table,omitempty"`
	PosColumn  string     `json:"pos_column,omitempty"`
	PartColumn string     `json:"part_column,omitempty"`
	ValColumn  string     `json:"val_column,omitempty"`
	Agg        string     `json:"agg,omitempty"`
	Window     SnapWindow `json:"window"`
	BaseRows   int        `json:"base_rows"`
	Definition string     `json:"definition"`
	Stale      bool       `json:"stale,omitempty"`
	StaleWhy   string     `json:"stale_why,omitempty"`
}

func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// snapLSNOf parses the LSN out of a snapshot file name.
func snapLSNOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeSnapshot serializes snap to <dataDir>/snap-<lsn>.snap via a temp file
// and atomic rename, fsyncing the file before and the directory after.
func writeSnapshot(dataDir string, snap *Snapshot) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(body))

	tmp, err := os.CreateTemp(dataDir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(hdr[:]); err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(dataDir, snapName(snap.LSN))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dataDir)
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 || string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: bad snapshot magic", filepath.Base(path))
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	wantCRC := binary.LittleEndian.Uint32(data[12:16])
	if len(data)-16 < n {
		return nil, fmt.Errorf("wal: %s: truncated snapshot", filepath.Base(path))
	}
	body := data[16 : 16+n]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("wal: %s: snapshot checksum mismatch", filepath.Base(path))
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("wal: %s: %w", filepath.Base(path), err)
	}
	return &snap, nil
}

// listSnapshots returns snapshot paths sorted by LSN descending (newest
// first).
func listSnapshots(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type cand struct {
		path string
		lsn  uint64
	}
	var cands []cand
	for _, e := range entries {
		if lsn, ok := snapLSNOf(e.Name()); ok {
			cands = append(cands, cand{path: filepath.Join(dataDir, e.Name()), lsn: lsn})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.path
	}
	return out, nil
}

// loadNewestSnapshot returns the newest snapshot that validates, skipping
// corrupt ones (disk damage should degrade recovery, never prevent startup).
// It returns (nil, "", nil) when no usable snapshot exists.
func loadNewestSnapshot(dataDir string) (*Snapshot, string, error) {
	paths, err := listSnapshots(dataDir)
	if err != nil {
		return nil, "", err
	}
	var firstErr error
	for _, p := range paths {
		snap, err := readSnapshot(p)
		if err == nil {
			return snap, p, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	_ = firstErr // corrupt snapshots are skipped; recovery proceeds from older state
	return nil, "", nil
}

// pruneSnapshots removes all but the newest two snapshots (the current one
// and one fallback) plus any leftover temp files.
func pruneSnapshots(dataDir string) error {
	paths, err := listSnapshots(dataDir)
	if err != nil {
		return err
	}
	for i, p := range paths {
		if i >= 2 {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	tmps, _ := filepath.Glob(filepath.Join(dataDir, "snap-*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	return syncDir(dataDir)
}
