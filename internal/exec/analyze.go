package exec

import (
	"fmt"
	"strings"
	"time"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// This file is the EXPLAIN ANALYZE half of the executor: Instrument wraps an
// operator tree in measuring probes, and FormatAnalyzedPlan renders the tree
// with the actual row counts and wall time each node accumulated while the
// query ran. Probes are only inserted when analysis was requested (EXPLAIN
// ANALYZE, the WithAnalyze exec option, or an armed slow-query log), so the
// ordinary hot path pays nothing.

// OpStats are the measurements one probe collected.
type OpStats struct {
	// Rows is the number of rows the operator emitted through Next.
	Rows int64
	// Elapsed is wall time spent inside the operator (Open + all Next calls
	// + Close), inclusive of its children — Volcano operators pull from their
	// children inside those calls, so inclusive time is what a node's calls
	// actually cost.
	Elapsed time.Duration
}

// Probe wraps an operator, counting rows and accumulating wall time. It is
// transparent to plan-shape helpers: Describe delegates to the wrapped
// operator.
type Probe struct {
	Inner Operator
	stats OpStats
}

// Rewirable lets operators defined outside this package participate in
// Instrument: the tree rewrite hands back probed children in the order
// Children returned them.
type Rewirable interface {
	Operator
	// SetChildren replaces the operator's children; len matches Children().
	SetChildren(children []Operator)
}

// Instrument rewires an operator tree so every node is observed by a Probe:
// each operator's child references are replaced with probed children (child
// fields are exported on every exec operator, which is what makes a generic
// rewrite possible; foreign operators opt in through Rewirable), then the
// node itself is wrapped. The returned root is a Probe; walk it with
// Children as usual.
//
// Instrument mutates the tree it is given. Plans are built fresh per
// execution (cached entries replan from the AST), so no shared plan is ever
// instrumented in place.
func Instrument(op Operator) Operator {
	switch o := op.(type) {
	case *Filter:
		o.Input = Instrument(o.Input)
	case *Project:
		o.Input = Instrument(o.Input)
	case *Limit:
		o.Input = Instrument(o.Input)
	case *Sort:
		o.Input = Instrument(o.Input)
	case *Distinct:
		o.Input = Instrument(o.Input)
	case *HashAggregate:
		o.Input = Instrument(o.Input)
	case *Window:
		o.Input = Instrument(o.Input)
	case *Ordinal:
		o.Input = Instrument(o.Input)
	case *Restore:
		o.Input = Instrument(o.Input)
	case *NestedLoopJoin:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *HashJoin:
		o.Left = Instrument(o.Left)
		o.Right = Instrument(o.Right)
	case *IndexNestedLoopJoin:
		o.Outer = Instrument(o.Outer)
	case *UnionAll:
		for i := range o.Inputs {
			o.Inputs[i] = Instrument(o.Inputs[i])
		}
	case Rewirable:
		kids := o.Children()
		probed := make([]Operator, len(kids))
		for i, c := range kids {
			probed[i] = Instrument(c)
		}
		o.SetChildren(probed)
	}
	return &Probe{Inner: op}
}

// Stats returns the measurements collected so far.
func (p *Probe) Stats() OpStats { return p.stats }

// Schema implements Operator.
func (p *Probe) Schema() *expr.Schema { return p.Inner.Schema() }

// Open implements Operator.
func (p *Probe) Open() error {
	t := time.Now()
	err := p.Inner.Open()
	p.stats.Elapsed += time.Since(t)
	return err
}

// Next implements Operator.
func (p *Probe) Next() (sqltypes.Row, error) {
	t := time.Now()
	row, err := p.Inner.Next()
	p.stats.Elapsed += time.Since(t)
	if row != nil {
		p.stats.Rows++
	}
	return row, err
}

// Close implements Operator.
func (p *Probe) Close() error {
	t := time.Now()
	err := p.Inner.Close()
	p.stats.Elapsed += time.Since(t)
	return err
}

// Describe implements Operator, delegating so plan-shape assertions and
// EXPLAIN output see the real operator.
func (p *Probe) Describe() string { return p.Inner.Describe() }

// Children implements Operator. The inner operator's child fields were
// rewritten to probes by Instrument, so the walk stays fully probed.
func (p *Probe) Children() []Operator { return p.Inner.Children() }

// FormatAnalyzedPlan renders an instrumented tree as an indented listing with
// per-node actuals:
//
//	Window … (rows=100 time=1.234ms)
//	  SeqScan seq (rows=100 time=0.041ms)
//
// Non-probe nodes (a tree that was never instrumented) render without
// actuals, degrading to FormatPlan output.
func FormatAnalyzedPlan(op Operator) string {
	var b strings.Builder
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		indent := strings.Repeat("  ", depth)
		if p, ok := o.(*Probe); ok {
			st := p.Stats()
			fmt.Fprintf(&b, "%s%s (rows=%d time=%.3fms)\n",
				indent, p.Describe(), st.Rows, float64(st.Elapsed.Nanoseconds())/1e6)
		} else {
			fmt.Fprintf(&b, "%s%s\n", indent, o.Describe())
		}
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return b.String()
}
