// Command rfbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	rfbench -exp table1 [-sizes 5000,10000,15000] [-check]
//	rfbench -exp table2 [-sizes 100,500,1000,1500,2000,3000,5000] [-check]
//	rfbench -exp patterns    # print the Fig. 2/4/10/13 rewrites and plans
//	rfbench -exp maintenance [-json] # §2.3 incremental update vs. full refresh
//	rfbench -exp window [-json] [-mem-budget SIZE]  # partition-parallel Window operator scaling, plus a budget-forced spill reference run
//	rfbench -exp storage [-json] [-mem-budget SIZE] # paged-storage scan grid (resident/warm/cold) and out-of-core strategy sweep
//	rfbench -exp all    [-quick]
//
// -quick shrinks the size lists so a full run finishes in seconds; -check
// additionally verifies every strategy's result against native evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rfview/internal/bench"
	"rfview/internal/spill"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, or all")
	sizes := flag.String("sizes", "", "comma-separated sequence sizes (default: the paper's)")
	check := flag.Bool("check", false, "verify every strategy against native evaluation")
	quick := flag.Bool("quick", false, "use reduced size lists for a fast run")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the paper-style tables")
	jsonOut := flag.Bool("json", false, "emit BENCH-style JSON (window and maintenance experiments)")
	memBudget := flag.String("mem-budget", "", "executor memory budget for the window experiment's spill reference run, e.g. 64KiB (empty = tiny default)")
	flag.Parse()

	var sizeList []int
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fatalf("bad size %q", s)
			}
			sizeList = append(sizeList, v)
		}
	}

	if *exp == "maintenance" {
		list := sizeList
		if list == nil {
			list = bench.MaintenanceSizes
			if *quick {
				list = []int{500, 2000}
			}
		}
		fmt.Fprintf(os.Stderr, "Running maintenance experiment (sizes %v)\n", list)
		rows, err := bench.RunMaintenance(list)
		if err != nil {
			fatalf("maintenance: %v", err)
		}
		ratioSizes := bench.DeltaRatioSizes
		if *quick {
			ratioSizes = []int{2000, 10000}
		}
		fmt.Fprintf(os.Stderr, "Running delta-vs-full grid (sizes %v, fracs %v)\n",
			ratioSizes, bench.DeltaRatioFracs)
		ratios, err := bench.RunDeltaRatios(ratioSizes, bench.DeltaRatioFracs)
		if err != nil {
			fatalf("maintenance: %v", err)
		}
		if *jsonOut {
			s, err := bench.MaintenanceJSON(rows, ratios)
			if err != nil {
				fatalf("maintenance: %v", err)
			}
			fmt.Print(s)
		} else {
			fmt.Print(bench.FormatMaintenance(rows))
			fmt.Println()
			fmt.Print(bench.FormatDeltaRatios(ratios))
		}
		return
	}

	if *exp == "window" {
		cfg := bench.DefaultWindowConfig()
		if *quick {
			cfg.Partitions = 16
			cfg.RowsPerPartition = 200
			cfg.Trials = 3
		}
		if *memBudget != "" {
			n, err := spill.ParseBytes(*memBudget)
			if err != nil {
				fatalf("-mem-budget: %v", err)
			}
			cfg.MemBudgetBytes = n
		}
		fmt.Fprintf(os.Stderr, "Running window experiment (%d partitions x %d rows, %d trials, workers 1/2/4)\n",
			cfg.Partitions, cfg.RowsPerPartition, cfg.Trials)
		rows, err := bench.RunWindowParallel(cfg, []int{1, 2, 4})
		if err != nil {
			fatalf("window: %v", err)
		}
		overCounts := []int{1, 2, 4, 8}
		fmt.Fprintf(os.Stderr, "Running multi-function grid (%v OVER clauses, shared vs unshared sorts)\n",
			overCounts)
		multi, err := bench.RunMultiWindow(cfg, overCounts)
		if err != nil {
			fatalf("window multi: %v", err)
		}
		if *jsonOut {
			s, err := bench.WindowJSON(cfg, rows, multi)
			if err != nil {
				fatalf("window: %v", err)
			}
			fmt.Print(s)
		} else {
			fmt.Print(bench.FormatWindow(rows))
			fmt.Println()
			fmt.Print(bench.FormatMultiWindow(multi))
		}
		return
	}

	if *exp == "storage" {
		list := sizeList
		if list == nil {
			list = bench.StorageScanSizes
			if *quick {
				list = []int{5000, 20000}
			}
		}
		fmt.Fprintf(os.Stderr, "Running storage scan grid (sizes %v, modes resident/warm/cold)\n", list)
		points, err := bench.RunStorageScans(list)
		if err != nil {
			fatalf("storage: %v", err)
		}
		stratN, budget := bench.StorageStrategyN, bench.StorageStrategyBudget
		if *quick {
			stratN, budget = 20000, 64<<10
		}
		if *memBudget != "" {
			n, err := spill.ParseBytes(*memBudget)
			if err != nil {
				fatalf("-mem-budget: %v", err)
			}
			budget = n
		}
		fmt.Fprintf(os.Stderr, "Running out-of-core strategy sweep (%d rows, %d KiB budget)\n",
			stratN, budget>>10)
		strats, err := bench.RunStorageStrategies(stratN, budget)
		if err != nil {
			fatalf("storage: %v", err)
		}
		if *jsonOut {
			s, err := bench.StorageJSON(points, stratN, budget, strats)
			if err != nil {
				fatalf("storage: %v", err)
			}
			fmt.Print(s)
		} else {
			fmt.Print(bench.FormatStorageScans(points))
			fmt.Println()
			fmt.Print(bench.FormatStorageStrategies(stratN, budget, strats))
		}
		return
	}

	if *exp == "patterns" {
		report, err := bench.PatternsReport()
		if err != nil {
			fatalf("patterns: %v", err)
		}
		fmt.Print(report)
		return
	}

	runT1 := *exp == "table1" || *exp == "all"
	runT2 := *exp == "table2" || *exp == "all"
	if !runT1 && !runT2 {
		fatalf("unknown experiment %q (want table1, table2, patterns, maintenance, window, storage, or all)", *exp)
	}

	if runT1 {
		list := sizeList
		if list == nil {
			if *quick {
				list = []int{500, 1000, 2000}
			} else {
				list = bench.Table1Sizes
			}
		}
		fmt.Printf("Running Table 1 (sizes %v)…\n", list)
		rows, err := bench.RunTable1(list, *check)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println()
		if *csv {
			fmt.Print(bench.CSVTable1(rows))
		} else {
			fmt.Print(bench.FormatTable1(rows))
		}
		fmt.Println()
	}
	if runT2 {
		list := sizeList
		if list == nil {
			if *quick {
				list = []int{100, 300, 600}
			} else {
				list = bench.Table2Sizes
			}
		}
		fmt.Printf("Running Table 2 (sizes %v)…\n", list)
		rows, err := bench.RunTable2(list, *check)
		if err != nil {
			fatalf("table2: %v", err)
		}
		fmt.Println()
		if *csv {
			fmt.Print(bench.CSVTable2(rows))
		} else {
			fmt.Print(bench.FormatTable2(rows))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfbench: "+format+"\n", args...)
	os.Exit(1)
}
