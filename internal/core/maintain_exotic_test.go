package core

import (
	"math"
	"testing"
)

// checkBitIdentical asserts the maintained sequence is BIT-identical to a
// fresh pipelined computation over the maintainer's raw data — the exact
// contract incremental maintenance promises REFRESH. Float64bits comparison
// makes NaN equal to NaN and distinguishes −0 from +0, which epsilon
// comparison cannot.
func checkBitIdentical(t *testing.T, m *Maintainer, ctx string) {
	t.Helper()
	want, err := ComputePipelined(m.Raw(), m.Seq().Win, m.Seq().Agg)
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	got := m.Seq()
	if got.Lo() != want.Lo() || got.Hi() != want.Hi() {
		t.Fatalf("%s: stored range [%d,%d], want [%d,%d]", ctx, got.Lo(), got.Hi(), want.Lo(), want.Hi())
	}
	for k := want.Lo(); k <= want.Hi(); k++ {
		gv, gok := got.AtOK(k)
		wv, wok := want.AtOK(k)
		if gok != wok || math.Float64bits(gv) != math.Float64bits(wv) {
			t.Fatalf("%s: position %d = (%v,%v) [bits %016x], want (%v,%v) [bits %016x]",
				ctx, k, gv, gok, math.Float64bits(gv), wv, wok, math.Float64bits(wv))
		}
	}
}

// TestMaintainerExoticValues: NaN, ±Inf and −0 defeat the §2.3 differencing
// rules (NaN and Inf poison running sums; −0 ties break differently between
// a band recompute and a pipelined refresh). The maintainer must detect them
// and stay bit-identical to a full refresh — entering, while present, and
// leaving again.
func TestMaintainerExoticValues(t *testing.T) {
	for _, agg := range []Agg{Sum, Min, Max, Count} {
		for _, w := range []Window{Sliding(2, 1), Cumul()} {
			name := agg.String()
			if w.Cumulative {
				name += "/cumulative"
			}
			m, err := NewMaintainer([]float64{3, 1, 4, 1, 5, 9, 2, 6}, w, agg)
			if err != nil {
				t.Fatal(err)
			}
			steps := []struct {
				ctx string
				op  func() error
			}{
				{"NaN enters", func() error { return m.Update(3, math.NaN()) }},
				{"update while NaN present", func() error { return m.Update(6, 7) }},
				{"append while NaN present", func() error { return m.Insert(m.Len()+1, 8) }},
				{"+Inf enters", func() error { return m.Update(1, math.Inf(1)) }},
				{"NaN leaves", func() error { return m.Update(3, 4) }},
				{"Inf leaves by delete", func() error { return m.Delete(1) }},
				// The raw data is clean again: from here on the incremental
				// rules run — and must still match the refresh bit for bit.
				{"clean update after exotics", func() error { return m.Update(2, -6) }},
				{"−0 enters", func() error { return m.Update(4, math.Copysign(0, -1)) }},
				{"update while −0 present", func() error { return m.Update(5, 2) }},
				{"−0 leaves", func() error { return m.Update(4, 0) }},
				{"clean append after −0", func() error { return m.Insert(m.Len()+1, 1) }},
			}
			for _, s := range steps {
				if err := s.op(); err != nil {
					t.Fatalf("%s: %s: %v", name, s.ctx, err)
				}
				checkBitIdentical(t, m, name+": "+s.ctx)
			}
		}
	}
}

// TestMaintainerExoticInsert: inserting an exotic value directly (rather than
// updating one in) must also fall back, including a −0 insert whose sum
// delta would be invisible to epsilon comparison.
func TestMaintainerExoticInsert(t *testing.T) {
	m, err := NewMaintainer([]float64{1, 2, 3, 4}, Sliding(1, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(3, math.Copysign(0, -1)); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "−0 insert")
	if err := m.Delete(3); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "−0 delete")
	if err := m.Insert(1, math.Inf(-1)); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "−Inf insert at the head")
}

// TestMaintainerMinMaxNarrowingBoundary pins the footnote in §2.3: MIN is
// incrementally maintainable only in the widening direction (a new value
// that can only lower a minimum). Raising the unique minimum — narrowing —
// must recompute exactly the band k−h … k+l and leave every other stored
// position untouched.
func TestMaintainerMinMaxNarrowingBoundary(t *testing.T) {
	raw := []float64{5, 1, 9, 7, 3, 8, 6}
	m, err := NewMaintainer(raw, Sliding(1, 1), Min) // l=1, h=1: band is k−1 … k+1
	if err != nil {
		t.Fatal(err)
	}

	// Widening: 0 < old minimum 1 → the fast path x̃'_i = min(x̃_i, v).
	m.ResetStats()
	if err := m.Update(2, 0); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "widening update")
	if m.Touched != 3 {
		t.Fatalf("widening update touched %d positions, want the band of 3", m.Touched)
	}

	// The boundary case: the new value EQUALS the old one. v ≤ old still
	// holds, so the fast path applies — and must be a no-op in value.
	m.ResetStats()
	if err := m.Update(2, 0); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "equal-value update")
	if m.Touched != 3 {
		t.Fatalf("equal-value update touched %d positions, want 3", m.Touched)
	}

	// Narrowing: raising the unique minimum 0 → 10. The stored minima at
	// positions 1..3 all credit the old value; only a band recompute can
	// discover the next-smallest raw values (5, 7, 9 …).
	m.ResetStats()
	if err := m.Update(2, 10); err != nil {
		t.Fatal(err)
	}
	checkBitIdentical(t, m, "narrowing update")
	if m.Touched != 3 {
		t.Fatalf("narrowing update touched %d positions, want the band of 3 (locality must survive the recompute)", m.Touched)
	}
	if got := m.Seq().At(1); got != 5 {
		t.Fatalf("seq(1) = %v after the narrowing update, want 5", got)
	}

	// The mirror image for MAX: raising widens, lowering the unique maximum
	// narrows. Clipping at the sequence ends must not over- or under-touch.
	mx, err := NewMaintainer([]float64{2, 9, 4}, Sliding(1, 1), Max)
	if err != nil {
		t.Fatal(err)
	}
	mx.ResetStats()
	if err := mx.Update(2, 1); err != nil { // narrow the unique maximum
		t.Fatal(err)
	}
	checkBitIdentical(t, mx, "max narrowing")
	if mx.Touched != 3 {
		t.Fatalf("max narrowing touched %d positions, want 3", mx.Touched)
	}
	mx.ResetStats()
	if err := mx.Update(1, -5); err != nil { // narrowing at the head: band clips to 0..2
		t.Fatal(err)
	}
	checkBitIdentical(t, mx, "max narrowing at the head")
	if mx.Touched != 3 { // positions 0,1,2 (header stored from −h)
		t.Fatalf("head narrowing touched %d positions, want 3", mx.Touched)
	}
}

// TestMaintainerRawZeroCopy pins the Raw() contract after the copy-per-call
// fix: it aliases live state (allocation-free, reflects mutations), while
// RawCopy returns an independent snapshot.
func TestMaintainerRawZeroCopy(t *testing.T) {
	m, err := NewMaintainer([]float64{1, 2, 3, 4, 5}, Sliding(1, 1), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = m.Raw()
		_ = m.Len()
	}); allocs != 0 {
		t.Fatalf("Raw()/Len() allocate %.0f times per call, want 0 — the copy-per-call regression is back", allocs)
	}
	view := m.Raw()
	if err := m.Update(2, 42); err != nil {
		t.Fatal(err)
	}
	if view[1] != 42 {
		t.Fatal("Raw() must alias live state: an update did not show through the view")
	}
	snap := m.RawCopy()
	if err := m.Update(2, 7); err != nil {
		t.Fatal(err)
	}
	if snap[1] != 42 {
		t.Fatal("RawCopy() must be an owned snapshot, not an alias")
	}
	snap[0] = 999
	if m.Raw()[0] == 999 {
		t.Fatal("mutating a RawCopy() leaked into the maintainer")
	}
}

// BenchmarkMaintainerRaw guards the zero-copy fast path: core.Maintainer.Raw
// sits on every maintenance dispatch, and the old copy-per-call behavior
// dominated profiles.
func BenchmarkMaintainerRaw(b *testing.B) {
	raw := make([]float64, 4096)
	for i := range raw {
		raw[i] = float64(i % 97)
	}
	m, err := NewMaintainer(raw, Sliding(4, 4), Sum)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.Raw()
		if len(r) != 4096 {
			b.Fatal("bad length")
		}
	}
}
