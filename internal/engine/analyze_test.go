package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"rfview/internal/rewrite"
)

// buildSeqView loads seq(pos,val), indexes it, and materializes the (2,1)
// sequence view the derivation tests run against.
func buildSeqView(t *testing.T, opts Options, n int) *Engine {
	t.Helper()
	e := New(opts)
	loadSeq(t, e, n, func(i int) int64 { return int64(i % 17) })
	mustExec(t, e, `CREATE UNIQUE INDEX seq_pk ON seq (pos)`)
	mustExec(t, e, `CREATE MATERIALIZED VIEW matseq AS
	  SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`)
	return e
}

// TestExplainAnalyzeStrategies runs EXPLAIN ANALYZE across every evaluation
// strategy of the paper's Table 2 and checks the header (chosen strategy,
// Δl/Δh overlap factors) and the per-operator actuals.
func TestExplainAnalyzeStrategies(t *testing.T) {
	const n = 20
	cases := []struct {
		name  string
		build func(t *testing.T) *Engine
		query string
		want  []string
	}{
		{
			name: "native",
			build: func(t *testing.T) *Engine {
				e := newEngine(t)
				loadSeq(t, e, n, func(i int) int64 { return int64(i) })
				return e
			},
			query: `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
			want:  []string{"-- strategy: native\n", "Window", "rows=20", "time="},
		},
		{
			name: "selfjoin",
			build: func(t *testing.T) *Engine {
				opts := DefaultOptions()
				opts.NativeWindow = false
				opts.UseMatViews = false
				e := New(opts)
				loadSeq(t, e, n, func(i int) int64 { return int64(i) })
				return e
			},
			query: `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
			want:  []string{"-- strategy: selfjoin\n", "-- rewritten: ", "rows=20", "time="},
		},
		{
			name:  "exact",
			build: func(t *testing.T) *Engine { return buildSeqView(t, DefaultOptions(), n) },
			query: `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
			want:  []string{"-- strategy: exact", "view=matseq", "exact=true", "rows=20", "time="},
		},
		{
			name: "maxoa",
			build: func(t *testing.T) *Engine {
				opts := DefaultOptions()
				opts.Strategy = rewrite.StrategyMaxOA
				return buildSeqView(t, opts, n)
			},
			// The paper's running example: (3,1) from the stored (2,1).
			query: `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
			want:  []string{"-- strategy: maxoa", "view=matseq", "Δl=1 Δh=0", "rows=20", "time="},
		},
		{
			name: "minoa",
			build: func(t *testing.T) *Engine {
				opts := DefaultOptions()
				opts.Strategy = rewrite.StrategyMinOA
				return buildSeqView(t, opts, n)
			},
			// Narrower than the stored window — only MinOA can do this.
			query: `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`,
			want:  []string{"-- strategy: minoa", "view=matseq", "rows=20", "time="},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := c.build(t)
			res, err := e.ExecContext(context.Background(), "EXPLAIN ANALYZE "+c.query)
			if err != nil {
				t.Fatalf("EXPLAIN ANALYZE: %v", err)
			}
			for _, w := range c.want {
				if !strings.Contains(res.Plan, w) {
					t.Errorf("plan missing %q:\n%s", w, res.Plan)
				}
			}
			if len(res.Rows) != 1 || len(res.Columns) != 1 || res.Columns[0] != "plan" {
				t.Errorf("EXPLAIN ANALYZE shape: cols=%v rows=%d", res.Columns, len(res.Rows))
			}
		})
	}
}

// TestWithAnalyzeOption checks the API variant: the statement returns its
// normal rows and additionally carries the analyzed plan.
func TestWithAnalyzeOption(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	res, err := e.ExecContext(context.Background(),
		`SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS c FROM seq`, WithAnalyze())
	if err != nil {
		t.Fatalf("ExecContext: %v", err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	if !strings.Contains(res.Analyzed, "-- strategy: native") || !strings.Contains(res.Analyzed, "rows=20") {
		t.Fatalf("Analyzed missing annotations:\n%s", res.Analyzed)
	}
	// Without the option the hot path stays uninstrumented.
	res, err = e.ExecContext(context.Background(), `SELECT pos FROM seq`)
	if err != nil {
		t.Fatalf("ExecContext: %v", err)
	}
	if res.Analyzed != "" {
		t.Fatalf("unrequested Analyzed populated:\n%s", res.Analyzed)
	}
}

// TestExplainReplaysCachedPlan is the cache-annotation fix: once a statement's
// plan is cached, EXPLAIN must replay the cached rendering (marked as a cache
// hit), not an empty tree.
func TestExplainReplaysCachedPlan(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 10, func(i int) int64 { return int64(i) })
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
	mustExec(t, e, q) // populates the plan cache
	res, err := e.ExecContext(context.Background(), "EXPLAIN "+q)
	if err != nil {
		t.Fatalf("EXPLAIN: %v", err)
	}
	if !strings.Contains(res.Plan, "-- plan cache: hit") {
		t.Fatalf("EXPLAIN did not replay the cached plan:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "Window") {
		t.Fatalf("replayed plan lost its operator tree:\n%s", res.Plan)
	}
	// An analyzed cache hit re-executes instrumented and says so.
	ares, err := e.ExecContext(context.Background(), q, WithAnalyze())
	if err != nil {
		t.Fatalf("ExecContext analyze: %v", err)
	}
	if !ares.CacheHit || !strings.Contains(ares.Analyzed, "-- plan cache: hit") {
		t.Fatalf("analyzed re-run of cached statement: hit=%v\n%s", ares.CacheHit, ares.Analyzed)
	}
	if len(ares.Rows) != 10 {
		t.Fatalf("analyzed cached run rows = %d, want 10", len(ares.Rows))
	}
}

// TestQueryMetrics checks the per-strategy counters and the plan-cache gauges
// land in the exposition.
func TestQueryMetrics(t *testing.T) {
	e := buildSeqView(t, DefaultOptions(), 20)
	exact := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS w FROM seq`
	native := `SELECT pos, val FROM seq`
	mustExec(t, e, exact)
	mustExec(t, e, native)
	mustExec(t, e, native) // second run: plan cache hit
	text := e.Metrics().Expose()
	for _, want := range []string{
		`rfview_queries_total{strategy="exact"} 1`,
		`rfview_queries_total{strategy="native"}`,
		"rfview_query_seconds_count",
		"rfview_plan_cache_hit_ratio",
		`rfview_view_staleness_seconds{view="matseq"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if st := e.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("expected a plan cache hit after repeating %q", native)
	}
	// Errors count by code.
	if _, err := e.ExecContext(context.Background(), `SELECT nope FROM missing`); err == nil {
		t.Fatalf("query against missing table succeeded")
	}
	if !strings.Contains(e.Metrics().Expose(), `rfview_query_errors_total{code="unknown_table"} 1`) {
		t.Errorf("error counter missing:\n%s", e.Metrics().Expose())
	}
}

// TestSlowQueryLog arms the log with a zero-distance threshold so every query
// is slow, and checks the record carries the analyzed plan.
func TestSlowQueryLog(t *testing.T) {
	e := newEngine(t)
	loadSeq(t, e, 20, func(i int) int64 { return int64(i) })
	var got []SlowQuery
	e.SetSlowQueryLog(time.Nanosecond, func(q SlowQuery) { got = append(got, q) })
	q := `SELECT pos, SUM(val) OVER (ORDER BY pos ROWS UNBOUNDED PRECEDING) AS c FROM seq`
	mustExec(t, e, q)
	if len(got) != 1 {
		t.Fatalf("slow-query records = %d, want 1", len(got))
	}
	if got[0].SQL != q || got[0].Elapsed <= 0 {
		t.Fatalf("record = %+v", got[0])
	}
	if !strings.Contains(got[0].Plan, "rows=20") {
		t.Fatalf("record plan not analyzed:\n%s", got[0].Plan)
	}
	if !strings.Contains(e.Metrics().Expose(), "rfview_slow_queries_total 1") {
		t.Fatalf("slow-query counter not incremented")
	}
	// Disarm: no further records, and the hot path is uninstrumented again.
	e.SetSlowQueryLog(0, nil)
	mustExec(t, e, q)
	if len(got) != 1 {
		t.Fatalf("disarmed log still recorded (%d records)", len(got))
	}
}
