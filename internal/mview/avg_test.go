package mview

import (
	"math"
	"testing"

	"rfview/internal/catalog"
	"rfview/internal/core"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
)

// AVG is not incrementally maintainable on its own (core.NewMaintainer
// rejects it): an AVG sequence view is maintained as a SUM/COUNT maintainer
// PAIR and every materialized value is derived as sum/count at write time.
// These tests pin that derivation bit-exactly against the pipelined refresh
// computation — including NaN and −0 flowing through the pair, where the
// SUM side must fall back to its refresh-identical recompute.

// floatFixture builds seq(pos INTEGER, val FLOAT) with the given values at
// positions 1…n.
func floatFixture(t *testing.T, vals []float64) (*catalog.Catalog, *Manager, *catalog.Table) {
	t.Helper()
	cat := catalog.New()
	tbl, err := cat.CreateTable("seq", []catalog.Column{
		{Name: "pos", Type: sqltypes.Int}, {Name: "val", Type: sqltypes.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		tbl.Heap.Insert(sqltypes.Row{sqltypes.NewInt(int64(i + 1)), sqltypes.NewFloat(v)})
	}
	return cat, NewManager(cat, nil), tbl
}

const avgViewDDL = `CREATE MATERIALIZED VIEW avgmv AS
  SELECT pos, AVG(val) OVER (ORDER BY pos ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS val FROM seq`

var seqCols = []string{"pos", "val"}

// avgUpdate mutates the heap and fires the maintenance hook, like the
// engine's UPDATE path does.
func avgUpdate(t *testing.T, m *Manager, tbl *catalog.Table, pos int, v float64) {
	t.Helper()
	var id storage.RowID
	var old sqltypes.Row
	tbl.Heap.Scan(func(rid storage.RowID, row sqltypes.Row) bool {
		if row[0].Int() == int64(pos) {
			id, old = rid, row.Clone()
			return false
		}
		return true
	})
	if old == nil {
		t.Fatalf("no base row at position %d", pos)
	}
	nrow := sqltypes.Row{sqltypes.NewInt(int64(pos)), sqltypes.NewFloat(v)}
	if err := tbl.Heap.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Heap.Insert(nrow); err != nil {
		t.Fatal(err)
	}
	m.AfterUpdate(nil, "seq", []sqltypes.Row{old}, []sqltypes.Row{nrow.Clone()}, seqCols)
}

func avgAppend(t *testing.T, m *Manager, tbl *catalog.Table, pos int, v float64) {
	t.Helper()
	row := sqltypes.Row{sqltypes.NewInt(int64(pos)), sqltypes.NewFloat(v)}
	if _, err := tbl.Heap.Insert(row); err != nil {
		t.Fatal(err)
	}
	m.AfterInsert(nil, "seq", []sqltypes.Row{row.Clone()}, seqCols)
}

func avgDelete(t *testing.T, m *Manager, tbl *catalog.Table, pos int) {
	t.Helper()
	var id storage.RowID
	var old sqltypes.Row
	tbl.Heap.Scan(func(rid storage.RowID, row sqltypes.Row) bool {
		if row[0].Int() == int64(pos) {
			id, old = rid, row.Clone()
			return false
		}
		return true
	})
	if old == nil {
		t.Fatalf("no base row at position %d", pos)
	}
	if err := tbl.Heap.Delete(id); err != nil {
		t.Fatal(err)
	}
	m.AfterDelete(nil, "seq", []sqltypes.Row{old}, seqCols)
}

// checkAvgBitExact compares the backing table bit-for-bit against a
// pipelined AVG computation over the base table's current contents.
func checkAvgBitExact(t *testing.T, cat *catalog.Catalog, m *Manager, ctx string) {
	t.Helper()
	if m.Stale("avgmv") {
		_, why := m.StaleInfo("avgmv")
		t.Fatalf("%s: view went stale on maintainable DML: %s", ctx, why)
	}
	base, err := cat.Table("seq")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.readDenseSequence(base, "pos", "val")
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	want, err := core.ComputePipelined(raw, core.Sliding(2, 1), core.Avg)
	if err != nil {
		t.Fatal(err)
	}
	got := viewValues(t, cat, "avgmv")
	rows := 0
	for k := want.Lo(); k <= want.Hi(); k++ {
		wv, ok := want.AtOK(k)
		if !ok {
			continue
		}
		rows++
		gv, present := got[int64(k)]
		if !present || math.Float64bits(gv) != math.Float64bits(wv) {
			t.Fatalf("%s: avg at pos %d = (%v,%v) [bits %016x], want %v [bits %016x]",
				ctx, k, gv, present, math.Float64bits(gv), wv, math.Float64bits(wv))
		}
	}
	if len(got) != rows {
		t.Fatalf("%s: backing has %d rows, want %d", ctx, len(got), rows)
	}
}

// TestAvgViewMaintainedAsSumCountPair: ordinary maintainable DML on an AVG
// view stays bit-identical to refresh through the derived pair.
func TestAvgViewMaintainedAsSumCountPair(t *testing.T) {
	cat, m, tbl := floatFixture(t, []float64{3, 1, 4, 1, 5, 9, 2, 6})
	createView(t, m, avgViewDDL)
	sv := m.seq["avgmv"]
	if sv == nil || sv.cnt == nil || sv.maint.Seq().Agg != core.Sum || sv.cnt.Seq().Agg != core.Count {
		t.Fatal("AVG view must be backed by a SUM maintainer and a COUNT maintainer")
	}
	checkAvgBitExact(t, cat, m, "initial fill")

	avgUpdate(t, m, tbl, 4, 10)
	checkAvgBitExact(t, cat, m, "update")
	avgAppend(t, m, tbl, 9, -7)
	checkAvgBitExact(t, cat, m, "append")
	avgDelete(t, m, tbl, 9)
	checkAvgBitExact(t, cat, m, "tail delete")
	avgUpdate(t, m, tbl, 1, 0.5) // non-integral: division must still match refresh
	checkAvgBitExact(t, cat, m, "fractional update")
}

// TestAvgViewExoticValues pushes NaN and −0 through the pair. While either
// is present in the raw data, the SUM maintainer recomputes instead of
// differencing — sum/count must track the refresh bits the whole way, NaN
// contamination included.
func TestAvgViewExoticValues(t *testing.T) {
	cat, m, tbl := floatFixture(t, []float64{2, 4, 6, 8, 10, 12})
	createView(t, m, avgViewDDL)

	avgUpdate(t, m, tbl, 3, math.NaN())
	checkAvgBitExact(t, cat, m, "NaN enters")
	avgUpdate(t, m, tbl, 5, 7) // NaN still present elsewhere
	checkAvgBitExact(t, cat, m, "update beside NaN")
	avgAppend(t, m, tbl, 7, 1)
	checkAvgBitExact(t, cat, m, "append with NaN present")
	avgUpdate(t, m, tbl, 3, 6) // NaN leaves; sums must lose the contamination
	checkAvgBitExact(t, cat, m, "NaN leaves")

	avgUpdate(t, m, tbl, 2, math.Copysign(0, -1))
	checkAvgBitExact(t, cat, m, "−0 enters")
	avgDelete(t, m, tbl, 7)
	checkAvgBitExact(t, cat, m, "tail delete with −0 present")
	avgUpdate(t, m, tbl, 2, 4)
	checkAvgBitExact(t, cat, m, "−0 leaves")
}
