package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, SQL: "CREATE TABLE t (a INTEGER)"},
		{LSN: 2, SQL: "INSERT INTO t VALUES (1)"},
		{LSN: 3, SQL: ""},
		{LSN: 1 << 60, SQL: "UPDATE t SET a = 2 WHERE a = 1 -- ünïcode ≤≥"},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	got, n, ok := readRecords(buf)
	if !ok || n != len(buf) {
		t.Fatalf("clean log read reported tear at %d (len %d, ok=%v)", n, len(buf), ok)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestTornTailRules(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, Record{LSN: 1, SQL: "INSERT INTO t VALUES (1)"})
	one := len(buf)
	buf = appendRecord(buf, Record{LSN: 2, SQL: "INSERT INTO t VALUES (2)"})

	t.Run("torn header", func(t *testing.T) {
		recs, n, ok := readRecords(buf[:one+4])
		if ok || n != one || len(recs) != 1 {
			t.Fatalf("recs=%d n=%d ok=%v, want 1 record truncated at %d", len(recs), n, ok, one)
		}
	})
	t.Run("torn payload", func(t *testing.T) {
		recs, n, ok := readRecords(buf[:len(buf)-3])
		if ok || n != one || len(recs) != 1 {
			t.Fatalf("recs=%d n=%d ok=%v, want 1 record truncated at %d", len(recs), n, ok, one)
		}
	})
	t.Run("bad crc", func(t *testing.T) {
		corrupt := append([]byte(nil), buf...)
		corrupt[len(corrupt)-1] ^= 0xFF
		recs, n, ok := readRecords(corrupt)
		if ok || n != one || len(recs) != 1 {
			t.Fatalf("recs=%d n=%d ok=%v, want 1 record truncated at %d", len(recs), n, ok, one)
		}
	})
	t.Run("bad crc mid-log stops replay there", func(t *testing.T) {
		corrupt := append([]byte(nil), buf...)
		corrupt[one+9] ^= 0xFF // inside record 2's payload
		more := appendRecord(corrupt, Record{LSN: 3, SQL: "INSERT INTO t VALUES (3)"})
		recs, n, ok := readRecords(more)
		if ok || n != one || len(recs) != 1 {
			t.Fatalf("recs=%d n=%d ok=%v; a record after a tear must not be trusted", len(recs), n, ok)
		}
	})
	t.Run("implausible length", func(t *testing.T) {
		corrupt := append([]byte(nil), buf...)
		corrupt[one] = 0xFF
		corrupt[one+1] = 0xFF
		corrupt[one+2] = 0xFF
		corrupt[one+3] = 0x7F
		recs, n, ok := readRecords(corrupt)
		if ok || n != one || len(recs) != 1 {
			t.Fatalf("recs=%d n=%d ok=%v, want stop at %d", len(recs), n, ok, one)
		}
	})
}

func TestLogRotationAndReadTail(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, SyncOff, 256, 0) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append("INSERT INTO t VALUES (0123456789)"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	recs, err := ReadTail(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("ReadTail returned %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, i+1)
		}
	}
	// The afterLSN filter skips covered records.
	recs, err = ReadTail(dir, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n-25 || recs[0].LSN != 26 {
		t.Fatalf("ReadTail(25) returned %d records starting at %d", len(recs), recs[0].LSN)
	}
}

func TestLogTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, SyncOff, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append("INSERT INTO t VALUES (0123456789)"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTail(dir, l.LastLSN())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("truncated log still replays %d records", len(recs))
	}
	// Appends after truncation land in the fresh segment with monotone LSNs.
	lsn, err := l.Append("INSERT INTO t VALUES (21)")
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 21 {
		t.Fatalf("post-truncate LSN = %d, want 21", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadTail(dir, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].SQL != "INSERT INTO t VALUES (21)" {
		t.Fatalf("post-truncate tail = %+v", recs)
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	snapA := &Snapshot{LSN: 5, Tables: []SnapTable{{
		Name:    "t",
		Columns: []SnapColumn{{Name: "a", Type: 2}},
		Rows:    [][]SnapDatum{{{T: 2, I: 42}}},
	}}}
	if err := writeSnapshot(dir, snapA); err != nil {
		t.Fatal(err)
	}
	snapB := &Snapshot{LSN: 9}
	if err := writeSnapshot(dir, snapB); err != nil {
		t.Fatal(err)
	}
	got, path, err := loadNewestSnapshot(dir)
	if err != nil || got == nil || got.LSN != 9 {
		t.Fatalf("newest snapshot: %+v (%s), err %v", got, path, err)
	}
	// Corrupt the newest: recovery must degrade to the older snapshot, not
	// refuse to start.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = loadNewestSnapshot(dir)
	if err != nil || got == nil || got.LSN != 5 {
		t.Fatalf("fallback snapshot: %+v, err %v", got, err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Rows[0][0].I != 42 {
		t.Fatalf("fallback snapshot content mangled: %+v", got.Tables)
	}
}

func TestPruneSnapshotsKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	for lsn := uint64(1); lsn <= 5; lsn++ {
		if err := writeSnapshot(dir, &Snapshot{LSN: lsn}); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-leftover.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := pruneSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	paths, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("prune left %d snapshots, want 2: %v", len(paths), paths)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-leftover.tmp")); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file survived prune")
	}
}

func TestSegmentMagicRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(segDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(segDir(dir), segName(1))
	if err := os.WriteFile(junk, bytes.Repeat([]byte("x"), 64), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTail(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("junk segment produced %d records", len(recs))
	}
}
