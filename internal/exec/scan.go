package exec

import (
	"fmt"

	"rfview/internal/catalog"
	"rfview/internal/expr"
	"rfview/internal/sqltypes"
	"rfview/internal/storage"
	"rfview/internal/txn"
)

// Scan is a full heap scan of a table (or a materialized view's backing
// table), producing columns qualified by the reference name used in the
// query.
type Scan struct {
	Table *catalog.Table
	Ref   string // alias or table name used in the query
	// Snap, when set, resolves the MVCC snapshot the scan reads at; every
	// operator of one statement shares the same resolver so the whole plan
	// sees one visibility horizon. Nil reads the latest committed state.
	Snap func() txn.Snapshot

	schema *expr.Schema
	it     *storage.Iter
	// stats accumulate across Opens (nested-loop re-scans included) and
	// survive Close so EXPLAIN ANALYZE can render them after execution.
	stats storage.IterStats
}

// NewScan builds a full scan of tbl referenced as ref.
func NewScan(tbl *catalog.Table, ref string) *Scan {
	cols := make([]expr.ColInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = expr.ColInfo{Table: ref, Name: c.Name, Type: c.Type}
	}
	return &Scan{Table: tbl, Ref: ref, schema: expr.NewSchema(cols...)}
}

// Schema implements Operator.
func (s *Scan) Schema() *expr.Schema { return s.schema }

// Open implements Operator. The scan streams pages through the buffer pool
// instead of materializing: the iterator copies the slot-directory header at
// Open, so concurrent mutations — by other transactions or by the same
// session (e.g. INSERT … SELECT from itself) — do not affect iteration, and
// MVCC stamp transitions never change visibility at a fixed snapshot.
func (s *Scan) Open() error {
	sn := s.Table.Heap.Latest()
	if s.Snap != nil {
		sn = s.Snap()
	}
	s.closeIter()
	s.it = s.Table.Heap.IterAt(sn)
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (sqltypes.Row, error) {
	if s.it == nil {
		return nil, nil
	}
	_, row, err := s.it.Next()
	return row, err
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.closeIter()
	return nil
}

func (s *Scan) closeIter() {
	if s.it == nil {
		return
	}
	st := s.it.Stats()
	s.stats.Pages += st.Pages
	s.stats.Hits += st.Hits
	s.stats.Misses += st.Misses
	s.it.Close()
	s.it = nil
}

// Describe implements Operator.
func (s *Scan) Describe() string {
	d := "SeqScan " + s.Table.Name
	if s.Ref != s.Table.Name {
		d = fmt.Sprintf("SeqScan %s AS %s", s.Table.Name, s.Ref)
	}
	// Runtime page traffic, rendered after execution (EXPLAIN ANALYZE
	// formats the tree once the operators have run and closed).
	if s.stats.Pages > 0 {
		hr := 1.0
		if denom := s.stats.Hits + s.stats.Misses; denom > 0 {
			hr = float64(s.stats.Hits) / float64(denom)
		}
		d += fmt.Sprintf(" (pages=%d hit_ratio=%.2f)", s.stats.Pages, hr)
	}
	return d
}

// Children implements Operator.
func (s *Scan) Children() []Operator { return nil }

// Values produces a fixed in-memory row set (used for VALUES lists and
// tests).
type Values struct {
	Rows   []sqltypes.Row
	schema *expr.Schema
	pos    int
}

// NewValues builds a Values operator.
func NewValues(schema *expr.Schema, rows []sqltypes.Row) *Values {
	return &Values{Rows: rows, schema: schema}
}

// Schema implements Operator.
func (v *Values) Schema() *expr.Schema { return v.schema }

// Open implements Operator.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (sqltypes.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	return row, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// Describe implements Operator.
func (v *Values) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

// Filter passes through rows whose predicate evaluates to true.
type Filter struct {
	Input Operator
	Pred  expr.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *expr.Schema { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *Filter) Next() (sqltypes.Row, error) {
	for {
		row, err := f.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(row)
		if err != nil {
			return nil, err
		}
		if expr.Truthy(v) {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Describe implements Operator.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Input} }

// Project evaluates a list of expressions per input row.
type Project struct {
	Input Operator
	Exprs []expr.Expr

	schema *expr.Schema
}

// NewProject builds a projection with the given output column names.
func NewProject(input Operator, exprs []expr.Expr, names []string) *Project {
	cols := make([]expr.ColInfo, len(exprs))
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		cols[i] = expr.ColInfo{Name: name, Type: e.Type()}
	}
	return &Project{Input: input, Exprs: exprs, schema: expr.NewSchema(cols...)}
}

// Schema implements Operator.
func (p *Project) Schema() *expr.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *Project) Next() (sqltypes.Row, error) {
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(sqltypes.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Describe implements Operator.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + joinTrunc(parts, 6)
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Input} }

func joinTrunc(parts []string, max int) string {
	if len(parts) > max {
		parts = append(append([]string{}, parts[:max]...), fmt.Sprintf("… (%d more)", len(parts)-max))
	}
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// Limit stops after N rows.
type Limit struct {
	Input Operator
	N     int64
	seen  int64
}

// Schema implements Operator.
func (l *Limit) Schema() *expr.Schema { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.Input.Open() }

// Next implements Operator.
func (l *Limit) Next() (sqltypes.Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// Describe implements Operator.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Input} }
