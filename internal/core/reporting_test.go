package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPosFuncBasics(t *testing.T) {
	pf, err := NewPosFunc(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Arity() != 3 || pf.Domain() != 24 {
		t.Fatalf("arity=%d domain=%d, want 3, 24", pf.Arity(), pf.Domain())
	}
	k, err := pf.Pos(1, 1, 1)
	if err != nil || k != 1 {
		t.Fatalf("pos(1,1,1) = %d (%v), want 1", k, err)
	}
	k, _ = pf.Pos(3, 4, 2)
	if k != 24 {
		t.Fatalf("pos(3,4,2) = %d, want 24", k)
	}
	// Row-major: incrementing the last column moves by one.
	a, _ := pf.Pos(2, 3, 1)
	b, _ := pf.Pos(2, 3, 2)
	if b != a+1 {
		t.Fatalf("pos(2,3,2)=%d, want pos(2,3,1)+1=%d", b, a+1)
	}
}

func TestPosFuncRoundTrip(t *testing.T) {
	pf, _ := NewPosFunc(3, 4, 2)
	for k := 1; k <= pf.Domain(); k++ {
		ks, err := pf.Key(k)
		if err != nil {
			t.Fatal(err)
		}
		back, err := pf.Pos(ks...)
		if err != nil || back != k {
			t.Fatalf("round trip %d -> %v -> %d", k, ks, back)
		}
	}
}

// TestPosFuncPaperExample reproduces the §6.1 example: dropping the
// rightmost column of address (2,4,2) gives window bounds at pos(2,3,1) and
// pos(3,1,1).
func TestPosFuncPaperExample(t *testing.T) {
	// The example needs card[1] >= 4 and a successor for the first column;
	// take cardinalities (3, 4, 2).
	pf, _ := NewPosFunc(3, 4, 2)
	k, _ := pf.Pos(2, 4, 2)
	// Lower bound: previous prefix (2,4)-1 = (2,3), first entry (2,3,1).
	lower, _ := pf.Pos(2, 3, 1)
	// Upper bound: next prefix (2,4)+1 = (3,1), first entry (3,1,1).
	upper, _ := pf.Pos(3, 1, 1)
	wL := k - lower
	wH := upper - k - 1
	if wL != 3 || wH != 0 {
		t.Fatalf("window bounds at pos(2,4,2): wL=%d wH=%d, want 3, 0", wL, wH)
	}
}

func TestPosFuncErrors(t *testing.T) {
	if _, err := NewPosFunc(); err == nil {
		t.Error("empty position function must fail")
	}
	if _, err := NewPosFunc(3, 0); err == nil {
		t.Error("zero cardinality must fail")
	}
	pf, _ := NewPosFunc(3, 4)
	if _, err := pf.Pos(1); err == nil {
		t.Error("wrong arity must fail")
	}
	if _, err := pf.Pos(4, 1); err == nil {
		t.Error("out-of-range key must fail")
	}
	if _, err := pf.Key(0); err == nil {
		t.Error("position 0 must fail")
	}
	if _, err := pf.Key(13); err == nil {
		t.Error("position past domain must fail")
	}
	if _, _, err := pf.Reduce(0); err == nil {
		t.Error("reduce by 0 must fail")
	}
	if _, _, err := pf.Reduce(2); err == nil {
		t.Error("reduce to zero columns must fail")
	}
}

func TestPosFuncIdentityForSingleColumn(t *testing.T) {
	pf, _ := NewPosFunc(10)
	for k := 1; k <= 10; k++ {
		got, _ := pf.Pos(k)
		if got != k {
			t.Fatalf("pos(%d) = %d; for n=1 pos must be the identity", k, got)
		}
	}
}

func newTestReportingSequence(t *testing.T, rng *rand.Rand, pf PosFunc, w Window, nParts int) (*ReportingSequence, map[PartitionKey][]float64) {
	t.Helper()
	parts := make(map[PartitionKey][]float64, nParts)
	for p := 0; p < nParts; p++ {
		parts[PartitionKey(string(rune('A'+p)))] = randRaw(rng, pf.Domain())
	}
	rs, err := NewReportingSequence(pf, w, Sum, parts)
	if err != nil {
		t.Fatal(err)
	}
	return rs, parts
}

func TestReportingSequenceBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	pf, _ := NewPosFunc(4, 3)
	rs, parts := newTestReportingSequence(t, rng, pf, Sliding(2, 1), 3)
	if got := rs.Partitions(); len(got) != 3 || got[0] != "A" || got[2] != "C" {
		t.Fatalf("Partitions() = %v", got)
	}
	for key, raw := range parts {
		want, _ := ComputeNaive(raw, Sliding(2, 1), Sum)
		for k := 1; k <= pf.Domain(); k++ {
			v, ok := rs.At(key, k)
			if !ok || math.Abs(v-want.At(k)) > 1e-9 {
				t.Fatalf("partition %q at %d: got (%v,%v)", key, k, v, ok)
			}
		}
	}
	if _, ok := rs.At("missing", 1); ok {
		t.Error("missing partition must report !ok")
	}
}

func TestNewReportingSequenceSizeMismatch(t *testing.T) {
	pf, _ := NewPosFunc(4, 3)
	_, err := NewReportingSequence(pf, Sliding(1, 1), Sum, map[PartitionKey][]float64{"A": make([]float64, 5)})
	if err == nil {
		t.Error("partition size mismatch must fail")
	}
}

// TestOrderingReduction — §6.1: derive a sequence ordered by (k1) from one
// ordered by (k1,k2), for block windows, against direct computation on the
// block-aggregated raw data.
func TestOrderingReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 20; trial++ {
		c1, c2 := 2+rng.Intn(5), 2+rng.Intn(5)
		pf, _ := NewPosFunc(c1, c2)
		rs, parts := newTestReportingSequence(t, rng, pf, Sliding(2, 1), 2)
		lb, hb := rng.Intn(3), rng.Intn(3)
		if lb+hb == 0 {
			hb = 1
		}
		target := Sliding(lb, hb)
		red, err := OrderingReduction(rs, 1, target)
		if err != nil {
			t.Fatal(err)
		}
		for key, raw := range parts {
			// Block-aggregate the raw data by the retained prefix.
			blocks := make([]float64, c1)
			for i, v := range raw {
				blocks[i/c2] += v
			}
			want, _ := ComputeNaive(blocks, target, Sum)
			for b := 1; b <= c1; b++ {
				got, ok := red.At(key, b)
				if !ok || math.Abs(got-want.At(b)) > 1e-9 {
					t.Fatalf("trial %d key %q block %d: got %v want %v (lb=%d hb=%d)",
						trial, key, b, got, want.At(b), lb, hb)
				}
			}
		}
	}
}

func TestOrderingReductionZeroWindow(t *testing.T) {
	// The (0,0) block window — "collapse each block, no neighbours" — is the
	// plain re-grouping case and must be accepted after reduction.
	rng := rand.New(rand.NewSource(137))
	pf, _ := NewPosFunc(3, 4)
	rs, parts := newTestReportingSequence(t, rng, pf, Sliding(1, 1), 1)
	red, err := OrderingReduction(rs, 1, Window{Preceding: 0, Following: 0})
	if err != nil {
		t.Fatal(err)
	}
	for key, raw := range parts {
		for b := 1; b <= 3; b++ {
			want := 0.0
			for i := (b - 1) * 4; i < b*4; i++ {
				want += raw[i]
			}
			got, ok := red.At(key, b)
			if !ok || math.Abs(got-want) > 1e-9 {
				t.Fatalf("key %q block %d: got %v want %v", key, b, got, want)
			}
		}
	}
}

func TestOrderingReductionCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	pf, _ := NewPosFunc(4, 3)
	rs, parts := newTestReportingSequence(t, rng, pf, Sliding(2, 2), 1)
	red, err := OrderingReduction(rs, 1, Cumul())
	if err != nil {
		t.Fatal(err)
	}
	for key, raw := range parts {
		acc := 0.0
		for b := 1; b <= 4; b++ {
			for i := (b - 1) * 3; i < b*3; i++ {
				acc += raw[i]
			}
			got, ok := red.At(key, b)
			if !ok || math.Abs(got-acc) > 1e-9 {
				t.Fatalf("key %q block %d: got %v want %v", key, b, got, acc)
			}
		}
	}
}

func TestOrderingReductionThreeColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	pf, _ := NewPosFunc(3, 2, 2)
	rs, parts := newTestReportingSequence(t, rng, pf, Sliding(3, 2), 1)
	// Drop two columns: blocks of size 4.
	red, err := OrderingReduction(rs, 2, Sliding(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for key, raw := range parts {
		blocks := make([]float64, 3)
		for i, v := range raw {
			blocks[i/4] += v
		}
		want, _ := ComputeNaive(blocks, Sliding(1, 0), Sum)
		for b := 1; b <= 3; b++ {
			got, ok := red.At(key, b)
			if !ok || math.Abs(got-want.At(b)) > 1e-9 {
				t.Fatalf("key %q block %d: got %v want %v", key, b, got, want.At(b))
			}
		}
	}
}

func TestOrderingReductionRejectsMinMax(t *testing.T) {
	pf, _ := NewPosFunc(3, 2)
	parts := map[PartitionKey][]float64{"A": make([]float64, 6)}
	rs, err := NewReportingSequence(pf, Sliding(1, 1), Min, parts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OrderingReduction(rs, 1, Sliding(1, 0)); err == nil {
		t.Error("ordering reduction over MIN must be rejected")
	}
}

// TestPartitioningReduction — §6.2: merge fine partitions into coarse ones;
// derived values must match recomputation over the concatenated raw data.
func TestPartitioningReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 20; trial++ {
		pf, _ := NewPosFunc(3 + rng.Intn(5))
		nFine := 2 + rng.Intn(3)
		parts := make(map[PartitionKey][]float64, nFine)
		order := make([]PartitionKey, nFine)
		for p := 0; p < nFine; p++ {
			key := PartitionKey(string(rune('a' + p)))
			parts[key] = randRaw(rng, pf.Domain())
			order[p] = key
		}
		srcWin := Sliding(1+rng.Intn(2), 1+rng.Intn(2))
		rs, err := NewReportingSequence(pf, srcWin, Sum, parts)
		if err != nil {
			t.Fatal(err)
		}
		target := Sliding(rng.Intn(4), 1+rng.Intn(4))
		merged, err := PartitioningReduction(rs, PartitionMerge{"ALL": order}, target)
		if err != nil {
			t.Fatal(err)
		}
		var concat []float64
		for _, key := range order {
			concat = append(concat, parts[key]...)
		}
		want, _ := ComputeNaive(concat, target, Sum)
		got := merged.Part["ALL"]
		if !EqualSeq(got, want, 1e-9) {
			t.Fatalf("trial %d: partitioning reduction mismatch (src %v, target %v, %d parts)",
				trial, srcWin, target, nFine)
		}
	}
}

func TestPartitioningReductionMissingPartition(t *testing.T) {
	pf, _ := NewPosFunc(4)
	rs, _ := NewReportingSequence(pf, Sliding(1, 1), Sum, map[PartitionKey][]float64{"a": make([]float64, 4)})
	if _, err := PartitioningReduction(rs, PartitionMerge{"ALL": {"a", "b"}}, Sliding(1, 1)); err == nil {
		t.Error("missing source partition must be rejected")
	}
}

func TestPartitioningReductionRejectsMinMax(t *testing.T) {
	pf, _ := NewPosFunc(4)
	rs, _ := NewReportingSequence(pf, Sliding(1, 1), Max, map[PartitionKey][]float64{"a": make([]float64, 4)})
	if _, err := PartitioningReduction(rs, PartitionMerge{"ALL": {"a"}}, Sliding(1, 1)); err == nil {
		t.Error("partitioning reduction over MAX must be rejected")
	}
}

// Property: pos/key round-trip for random shapes.
func TestQuickPosRoundTrip(t *testing.T) {
	f := func(c1, c2, c3 uint8, kRaw uint16) bool {
		card := []int{int(c1%6) + 1, int(c2%6) + 1, int(c3%6) + 1}
		pf, err := NewPosFunc(card...)
		if err != nil {
			return false
		}
		k := int(kRaw)%pf.Domain() + 1
		ks, err := pf.Key(k)
		if err != nil {
			return false
		}
		back, err := pf.Pos(ks...)
		return err == nil && back == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
