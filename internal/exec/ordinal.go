package exec

import (
	"context"
	"fmt"

	"rfview/internal/expr"
	"rfview/internal/sqltypes"
)

// This file holds the two bookkeeping operators of shared-sort window
// planning. A multi-window plan reorders the stream once per spec class, so
// the planner brackets the window stack with an order tag: Ordinal appends
// each input row's position as a hidden INTEGER column before the first
// shared sort, and Restore puts the rows back into that original order (and
// drops the column) after the last Window. Everything outside the bracket —
// ORDER BY, projection, result rows — observes exactly the order the
// unshared plan would have produced, which is what makes sort sharing
// bit-exact end to end.

// Ordinal streams its input through unchanged, appending the 0-based input
// position as one extra INTEGER column.
type Ordinal struct {
	Input Operator
	// Name is the appended column's name (the planner uses "__ord").
	Name string

	schema *expr.Schema
	n      int64
	arena  []sqltypes.Datum
}

// ordinalArenaRows is how many output rows share one datum allocation. The
// operator tags every input row, so per-row slice headers dominated its cost;
// carving rows out of a block allocation amortizes the garbage-collector work
// across the chunk.
const ordinalArenaRows = 256

// NewOrdinal builds the operator; its schema is the input schema plus the
// ordinal column.
func NewOrdinal(input Operator, name string) *Ordinal {
	return &Ordinal{
		Input:  input,
		Name:   name,
		schema: input.Schema().Append(expr.ColInfo{Name: name, Type: sqltypes.Int}),
	}
}

// Schema implements Operator.
func (o *Ordinal) Schema() *expr.Schema { return o.schema }

// Open implements Operator.
func (o *Ordinal) Open() error {
	o.n = 0
	return o.Input.Open()
}

// Next implements Operator.
func (o *Ordinal) Next() (sqltypes.Row, error) {
	row, err := o.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	n := len(row) + 1
	if len(o.arena) < n {
		o.arena = make([]sqltypes.Datum, n*ordinalArenaRows)
	}
	// Full-slice expression: a downstream append must reallocate rather than
	// grow into the next row's datums.
	out := sqltypes.Row(o.arena[:0:n])
	o.arena = o.arena[n:]
	out = append(out, row...)
	out = append(out, sqltypes.NewInt(o.n))
	o.n++
	return out, nil
}

// Close implements Operator.
func (o *Ordinal) Close() error {
	o.arena = nil
	return o.Input.Close()
}

// Describe implements Operator.
func (o *Ordinal) Describe() string { return "Ordinal " + o.Name }

// Children implements Operator.
func (o *Ordinal) Children() []Operator { return []Operator{o.Input} }

// Restore materializes its input and re-emits the rows in the original input
// order recorded by a matching Ordinal operator, dropping the ordinal column.
// The ordinals are a permutation of 0..n-1 (window operators neither drop nor
// duplicate rows), so restoration is a direct O(n) placement, not a sort.
type Restore struct {
	Input Operator
	// Col is the ordinal column's index in the input schema.
	Col int
	// Ctx, when set, cancels the input drain. nil means context.Background().
	Ctx context.Context

	schema *expr.Schema
	out    []sqltypes.Row
	pos    int
}

// NewRestore builds the operator; its schema is the input schema without the
// ordinal column.
func NewRestore(input Operator, col int) *Restore {
	in := input.Schema().Cols
	cols := make([]expr.ColInfo, 0, len(in)-1)
	cols = append(cols, in[:col]...)
	cols = append(cols, in[col+1:]...)
	return &Restore{Input: input, Col: col, schema: expr.NewSchema(cols...)}
}

// Schema implements Operator.
func (r *Restore) Schema() *expr.Schema { return r.schema }

// ctx resolves the operator's context.
func (r *Restore) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Open implements Operator.
func (r *Restore) Open() error {
	rows, err := CollectCtx(r.ctx(), r.Input)
	if err != nil {
		return err
	}
	out := make([]sqltypes.Row, len(rows))
	for _, row := range rows {
		if r.Col >= len(row) {
			return fmt.Errorf("exec: restore ordinal column %d out of range", r.Col)
		}
		d := row[r.Col]
		if d.Typ() != sqltypes.Int {
			return fmt.Errorf("exec: restore ordinal is %s, want INTEGER", d.Typ())
		}
		ord := d.Int()
		if ord < 0 || ord >= int64(len(rows)) || out[ord] != nil {
			return fmt.Errorf("exec: restore ordinals are not a permutation (saw %d twice or out of range)", ord)
		}
		// Splice the ordinal out in place. The input is always the top Window
		// of the shared stack, and Window builds each output row as a fresh
		// allocation it hands over wholesale, so these slices have no other
		// referents.
		copy(row[r.Col:], row[r.Col+1:])
		out[ord] = row[:len(row)-1]
	}
	r.out = out
	r.pos = 0
	return nil
}

// takeRows implements rowsHandoff.
func (r *Restore) takeRows() []sqltypes.Row {
	out := r.out
	r.out = nil
	return out
}

// Next implements Operator.
func (r *Restore) Next() (sqltypes.Row, error) {
	if r.pos >= len(r.out) {
		return nil, nil
	}
	row := r.out[r.pos]
	r.pos++
	return row, nil
}

// Close implements Operator.
func (r *Restore) Close() error {
	r.out = nil
	return nil
}

// Describe implements Operator.
func (r *Restore) Describe() string { return "Restore input-order" }

// Children implements Operator.
func (r *Restore) Children() []Operator { return []Operator{r.Input} }
